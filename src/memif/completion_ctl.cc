#include "memif/completion_ctl.h"

#include <cmath>

#include "sim/log.h"

namespace memif {

CompletionController::CompletionController(const sim::CostModel &cm,
                                           std::uint64_t static_threshold,
                                           double alpha)
    : cm_(cm),
      static_threshold_(static_threshold),
      alpha_(alpha),
      irq_path_ns_(static_cast<double>(cm.irq_overhead + cm.kthread_wakeup))
{
    MEMIF_ASSERT(alpha_ > 0.0 && alpha_ <= 1.0,
                 "EWMA alpha out of (0, 1]");
}

std::size_t
CompletionController::bucket_index(std::uint64_t bytes)
{
    std::size_t idx = 0;
    while (bytes > 1 && idx + 1 < kBuckets) {
        bytes >>= 1;
        ++idx;
    }
    return idx;
}

CompletionMode
CompletionController::choose(std::uint64_t bytes, std::size_t backlog)
{
    const Bucket &b = buckets_[bucket_index(bytes)];
    if (b.samples < kWarmupSamples) {
        // Cold start: exactly the paper's static rule, so the first few
        // transfers of any size behave identically to the fixed config.
        ++decisions_.cold_fallbacks;
        if (bytes < static_threshold_ && backlog == 0) {
            ++decisions_.polled;
            return CompletionMode::kPolled;
        }
        if (backlog >= 2) {
            ++decisions_.moderated;
            return CompletionMode::kModerated;
        }
        ++decisions_.interrupt;
        return CompletionMode::kInterrupt;
    }

    // A backlog means the kthread has other requests to dispatch while
    // this one flies — spin-polling would stall them, and completions
    // will bunch up anyway, which is what moderation amortizes.
    if (backlog >= 2) {
        ++decisions_.moderated;
        return CompletionMode::kModerated;
    }

    // Poll only when the *pessimistic* predicted wait (EWMA plus one
    // smoothed error margin) still beats the interrupt round-trip; a
    // noisy bucket therefore degrades safely to interrupts.
    if (backlog == 0 && b.ewma_ns + b.ewma_err_ns < irq_path_ns_) {
        ++decisions_.polled;
        return CompletionMode::kPolled;
    }
    ++decisions_.interrupt;
    return CompletionMode::kInterrupt;
}

void
CompletionController::observe(std::uint64_t bytes, sim::Duration predicted,
                              sim::Duration actual)
{
    Bucket &b = buckets_[bucket_index(bytes)];
    const double actual_ns = static_cast<double>(actual);
    const double err_ns =
        std::abs(actual_ns - static_cast<double>(predicted));
    if (b.samples == 0) {
        b.ewma_ns = actual_ns;
        b.ewma_err_ns = err_ns;
    } else {
        b.ewma_ns = alpha_ * actual_ns + (1.0 - alpha_) * b.ewma_ns;
        b.ewma_err_ns = alpha_ * err_ns + (1.0 - alpha_) * b.ewma_err_ns;
    }
    ++b.samples;
}

sim::Duration
CompletionController::predict(std::uint64_t bytes) const
{
    const Bucket &b = buckets_[bucket_index(bytes)];
    if (b.samples < kWarmupSamples) return 0;
    return static_cast<sim::Duration>(b.ewma_ns);
}

CompletionController::BucketView
CompletionController::bucket(std::uint64_t bytes) const
{
    const Bucket &b = buckets_[bucket_index(bytes)];
    return BucketView{b.samples, b.ewma_ns, b.ewma_err_ns};
}

}  // namespace memif
