/**
 * @file
 * DMA error-recovery tests: injected TC errors, lost completion
 * interrupts and stuck transfers against the driver's watchdog, retry,
 * CPU-copy fallback and rollback machinery. Every scenario must end
 * with a terminal request status, intact data, and no leaked frames.
 */
#include "memif/device.h"

#include <gtest/gtest.h>

#include <vector>

#include "dma/engine.h"
#include "memif/user_api.h"
#include "os/kernel.h"
#include "os/process.h"
#include "sim/types.h"

namespace memif::core {
namespace {

struct Fixture {
    os::Kernel kernel;
    os::Process &proc;
    MemifDevice dev;
    MemifUser user;

    explicit Fixture(MemifConfig cfg = {})
        : proc(kernel.create_process()),
          dev(kernel, proc, cfg),
          user(dev)
    {
    }

    ~Fixture()
    {
        // Every test must hand the driver back fully quiesced: no
        // in-flight records, leased descriptors, stuck slots, parked
        // frames unaccounted for, or stale xlate entries. Tests that
        // intentionally end mid-flight opt out via the flag.
        if (!check_quiesce_on_teardown) return;
        std::string why;
        EXPECT_TRUE(dev.check_quiesced(&why)) << "teardown: " << why;
    }

    /** Opt-out for tests that deliberately leave work in flight. */
    bool check_quiesce_on_teardown = true;

    sim::FaultInjector &faults() { return kernel.faults(); }

    void
    fill(vm::VAddr base, std::uint64_t bytes, std::uint8_t seed)
    {
        std::vector<std::uint8_t> buf(bytes);
        for (std::uint64_t i = 0; i < bytes; ++i)
            buf[i] = static_cast<std::uint8_t>(seed + i * 13);
        ASSERT_TRUE(proc.as().write(base, buf.data(), bytes));
    }

    bool
    check(vm::VAddr base, std::uint64_t bytes, std::uint8_t seed)
    {
        std::vector<std::uint8_t> buf(bytes);
        if (!proc.as().read(base, buf.data(), bytes)) return false;
        for (std::uint64_t i = 0; i < bytes; ++i)
            if (buf[i] != static_cast<std::uint8_t>(seed + i * 13))
                return false;
        return true;
    }

    std::uint32_t
    submit(MovOp op, vm::VAddr src, std::uint32_t npages,
           vm::VAddr dst_or_node)
    {
        const std::uint32_t idx = user.alloc_request();
        EXPECT_NE(idx, kNoRequest);
        MovReq &req = user.request(idx);
        req.op = op;
        req.src_base = src;
        req.num_pages = npages;
        if (op == MovOp::kReplicate)
            req.dst_base = dst_or_node;
        else
            req.dst_node = static_cast<std::uint32_t>(dst_or_node);
        kernel.spawn(user.submit(idx));
        return idx;
    }
};

TEST(Recovery, TcErrorIsRetriedToSuccess)
{
    Fixture f;
    const vm::VAddr src = f.proc.mmap(16 * 4096, vm::PageSize::k4K);
    const vm::VAddr dst =
        f.proc.mmap(16 * 4096, vm::PageSize::k4K, f.kernel.fast_node());
    f.fill(src, 16 * 4096, 42);
    f.faults().arm_nth(dma::kFaultTcError, 1);  // first transfer errors

    const std::uint32_t idx = f.submit(MovOp::kReplicate, src, 16, dst);
    f.kernel.run();

    EXPECT_EQ(f.user.request(idx).load_status(), MovStatus::kDone);
    EXPECT_TRUE(f.check(dst, 16 * 4096, 42));
    EXPECT_EQ(f.dev.stats().dma_errors, 1u);
    EXPECT_EQ(f.dev.stats().dma_retries, 1u);
    EXPECT_EQ(f.dev.stats().fallback_copies, 0u);
    EXPECT_EQ(f.kernel.dma_engine().stats().transfers_failed, 1u);
}

TEST(Recovery, PersistentErrorFallsBackToCpuCopy)
{
    Fixture f;
    const vm::VAddr src = f.proc.mmap(16 * 4096, vm::PageSize::k4K);
    const vm::VAddr dst =
        f.proc.mmap(16 * 4096, vm::PageSize::k4K, f.kernel.fast_node());
    f.fill(src, 16 * 4096, 7);
    f.faults().arm_probability(dma::kFaultTcError, 1.0);  // every transfer

    const std::uint32_t idx = f.submit(MovOp::kReplicate, src, 16, dst);
    f.kernel.run();

    // 1 original start + 3 retries all error out, then the CPU copies.
    EXPECT_EQ(f.user.request(idx).load_status(), MovStatus::kDone);
    EXPECT_TRUE(f.check(dst, 16 * 4096, 7));
    EXPECT_EQ(f.dev.stats().dma_errors, 4u);
    EXPECT_EQ(f.dev.stats().dma_retries, 3u);
    EXPECT_EQ(f.dev.stats().fallback_copies, 1u);
}

TEST(Recovery, FallbackCompletesMigrationOntoNewFrames)
{
    Fixture f;
    const vm::VAddr base = f.proc.mmap(8 * 4096, vm::PageSize::k4K);
    f.fill(base, 8 * 4096, 3);
    f.faults().arm_probability(dma::kFaultTcError, 1.0);

    const std::uint32_t idx =
        f.submit(MovOp::kMigrate, base, 8, f.kernel.fast_node());
    f.kernel.run();

    EXPECT_EQ(f.user.request(idx).load_status(), MovStatus::kDone);
    EXPECT_TRUE(f.check(base, 8 * 4096, 3));
    vm::Vma *vma = f.proc.as().find_vma(base);
    for (std::uint64_t i = 0; i < 8; ++i)
        EXPECT_EQ(f.kernel.phys().node_of(vma->pte(i).pfn),
                  f.kernel.fast_node());
    EXPECT_EQ(f.dev.stats().fallback_copies, 1u);
}

TEST(Recovery, NoFallbackRollsBackMigration)
{
    MemifConfig cfg;
    cfg.cpu_copy_fallback = false;
    Fixture f(cfg);
    const vm::VAddr base = f.proc.mmap(8 * 4096, vm::PageSize::k4K);
    f.fill(base, 8 * 4096, 11);
    const std::uint64_t outstanding_before =
        f.kernel.phys().outstanding_pages();
    f.faults().arm_probability(dma::kFaultTcError, 1.0);

    const std::uint32_t idx =
        f.submit(MovOp::kMigrate, base, 8, f.kernel.fast_node());
    f.kernel.run();

    // The request fails, but the region is exactly as before: old PTEs
    // restored (still on the slow node), data intact, no frame leaked.
    EXPECT_EQ(f.user.request(idx).load_status(), MovStatus::kFailed);
    EXPECT_EQ(f.user.request(idx).error, MovError::kDmaError);
    EXPECT_TRUE(f.check(base, 8 * 4096, 11));
    vm::Vma *vma = f.proc.as().find_vma(base);
    for (std::uint64_t i = 0; i < 8; ++i) {
        const vm::Pte pte = vma->pte(i);
        EXPECT_EQ(f.kernel.phys().node_of(pte.pfn), f.kernel.slow_node());
        EXPECT_FALSE(pte.young);
        EXPECT_FALSE(pte.migration);
    }
    EXPECT_EQ(f.kernel.phys().outstanding_pages(), outstanding_before);
    EXPECT_EQ(f.dev.stats().rollbacks, 1u);
    // The region stays usable after the rollback.
    f.fill(base, 8 * 4096, 12);
    EXPECT_TRUE(f.check(base, 8 * 4096, 12));
}

TEST(Recovery, NoFallbackLeavesReplicationDestinationUntouched)
{
    MemifConfig cfg;
    cfg.cpu_copy_fallback = false;
    Fixture f(cfg);
    const vm::VAddr src = f.proc.mmap(8 * 4096, vm::PageSize::k4K);
    const vm::VAddr dst =
        f.proc.mmap(8 * 4096, vm::PageSize::k4K, f.kernel.fast_node());
    f.fill(src, 8 * 4096, 21);
    f.fill(dst, 8 * 4096, 99);  // pre-existing destination content
    f.faults().arm_probability(dma::kFaultTcError, 1.0);

    const std::uint32_t idx = f.submit(MovOp::kReplicate, src, 8, dst);
    f.kernel.run();

    // All-or-nothing: error completions move no bytes, so the failed
    // replication must not have scribbled on the destination.
    EXPECT_EQ(f.user.request(idx).load_status(), MovStatus::kFailed);
    EXPECT_EQ(f.user.request(idx).error, MovError::kDmaError);
    EXPECT_TRUE(f.check(dst, 8 * 4096, 99));
    EXPECT_TRUE(f.check(src, 8 * 4096, 21));
    EXPECT_EQ(f.dev.stats().rollbacks, 0u);  // nothing to roll back
}

TEST(Recovery, LostInterruptIsCaughtByWatchdog)
{
    Fixture f;
    const vm::VAddr src = f.proc.mmap(16 * 4096, vm::PageSize::k4K);
    const vm::VAddr dst =
        f.proc.mmap(16 * 4096, vm::PageSize::k4K, f.kernel.fast_node());
    f.fill(src, 16 * 4096, 55);
    f.faults().arm_nth(dma::kFaultLostIrq, 1);

    const std::uint32_t idx = f.submit(MovOp::kReplicate, src, 16, dst);
    f.kernel.run();

    // The bytes landed; only the interrupt was dropped. The watchdog
    // notices, reclaims the descriptor chain, and releases normally —
    // no retry and no second copy.
    EXPECT_EQ(f.user.request(idx).load_status(), MovStatus::kDone);
    EXPECT_TRUE(f.check(dst, 16 * 4096, 55));
    EXPECT_EQ(f.dev.stats().watchdog_timeouts, 1u);
    EXPECT_EQ(f.dev.stats().dma_retries, 0u);
    EXPECT_EQ(f.kernel.dma_engine().stats().interrupts_lost, 1u);
    EXPECT_EQ(f.kernel.dma_engine().stats().transfers_started, 1u);
}

TEST(Recovery, StuckTransferTimesOutAndRetries)
{
    Fixture f;
    const vm::VAddr src = f.proc.mmap(16 * 4096, vm::PageSize::k4K);
    const vm::VAddr dst =
        f.proc.mmap(16 * 4096, vm::PageSize::k4K, f.kernel.fast_node());
    f.fill(src, 16 * 4096, 66);
    f.faults().arm_nth(dma::kFaultStuck, 1);

    const std::uint32_t idx = f.submit(MovOp::kReplicate, src, 16, dst);
    f.kernel.run();

    EXPECT_EQ(f.user.request(idx).load_status(), MovStatus::kDone);
    EXPECT_TRUE(f.check(dst, 16 * 4096, 66));
    EXPECT_EQ(f.dev.stats().watchdog_timeouts, 1u);
    EXPECT_EQ(f.dev.stats().dma_retries, 1u);
    EXPECT_EQ(f.kernel.dma_engine().stats().transfers_cancelled, 1u);
}

TEST(Recovery, PolledStuckTransferIsSupervisedByKthread)
{
    // The second small request is served by the kernel thread in polled
    // mode (the kicked first one is irq-driven); its timed wait doubles
    // as the watchdog when the transfer hangs.
    Fixture f;
    const vm::VAddr src = f.proc.mmap(32 * 4096, vm::PageSize::k4K);
    const vm::VAddr dst =
        f.proc.mmap(32 * 4096, vm::PageSize::k4K, f.kernel.fast_node());
    f.fill(src, 32 * 4096, 17);
    f.faults().arm_nth(dma::kFaultStuck, 2);  // the polled transfer

    std::uint32_t idx0 = kNoRequest, idx1 = kNoRequest;
    auto app = [&]() -> sim::Task {
        for (int r = 0; r < 2; ++r) {
            const std::uint32_t idx = f.user.alloc_request();
            MovReq &req = f.user.request(idx);
            req.op = MovOp::kReplicate;
            req.src_base = src + static_cast<vm::VAddr>(r) * 16 * 4096;
            req.dst_base = dst + static_cast<vm::VAddr>(r) * 16 * 4096;
            req.num_pages = 16;  // 64 KB: below the poll threshold
            (r == 0 ? idx0 : idx1) = idx;
            co_await f.user.submit(idx);
        }
    };
    f.kernel.spawn(app());
    f.kernel.run();

    EXPECT_EQ(f.user.request(idx0).load_status(), MovStatus::kDone);
    EXPECT_EQ(f.user.request(idx1).load_status(), MovStatus::kDone);
    EXPECT_TRUE(f.check(dst, 32 * 4096, 17));
    EXPECT_EQ(f.dev.stats().watchdog_timeouts, 1u);
    EXPECT_EQ(f.dev.stats().dma_retries, 1u);
    EXPECT_EQ(f.dev.stats().polled_completions, 1u);
}

TEST(Recovery, FallbackUnderRacePreventionDefersRelease)
{
    // Under kPrevent the Release step cannot run in interrupt context;
    // the CPU-copy fallback must hand it to the kernel thread just like
    // the normal interrupt path does.
    MemifConfig cfg;
    cfg.race_policy = RacePolicy::kPrevent;
    Fixture f(cfg);
    const vm::VAddr base = f.proc.mmap(8 * 4096, vm::PageSize::k4K);
    f.fill(base, 8 * 4096, 29);
    f.faults().arm_probability(dma::kFaultTcError, 1.0);

    const std::uint32_t idx =
        f.submit(MovOp::kMigrate, base, 8, f.kernel.fast_node());
    f.kernel.run();

    EXPECT_EQ(f.user.request(idx).load_status(), MovStatus::kDone);
    EXPECT_TRUE(f.check(base, 8 * 4096, 29));
    vm::Vma *vma = f.proc.as().find_vma(base);
    for (std::uint64_t i = 0; i < 8; ++i) {
        EXPECT_EQ(f.kernel.phys().node_of(vma->pte(i).pfn),
                  f.kernel.fast_node());
        EXPECT_FALSE(vma->pte(i).migration);
    }
    EXPECT_EQ(f.dev.stats().fallback_copies, 1u);
}

TEST(Recovery, InjectedAllocationFailureReportsNoMemory)
{
    Fixture f;
    const vm::VAddr base = f.proc.mmap(8 * 4096, vm::PageSize::k4K);
    f.fill(base, 8 * 4096, 44);
    const std::uint64_t outstanding_before =
        f.kernel.phys().outstanding_pages();
    // The third destination-page allocation fails: the first two must
    // be given back.
    f.faults().arm_nth(kFaultAllocFail, 3);

    const std::uint32_t idx =
        f.submit(MovOp::kMigrate, base, 8, f.kernel.fast_node());
    f.kernel.run();

    EXPECT_EQ(f.user.request(idx).load_status(), MovStatus::kFailed);
    EXPECT_EQ(f.user.request(idx).error, MovError::kNoMemory);
    EXPECT_TRUE(f.check(base, 8 * 4096, 44));
    EXPECT_EQ(f.kernel.phys().outstanding_pages(), outstanding_before);
}

TEST(Recovery, ArmedAtZeroRateCostsNothing)
{
    // The zero-overhead claim, as a unit test: a run with the injector
    // armed at probability 0 (every hook consulted, nothing fires) and
    // the watchdog armed throughout must end at the exact same virtual
    // time as a plain run.
    auto elapsed = [](bool arm) {
        Fixture f;
        if (arm) {
            f.faults().arm_probability(dma::kFaultTcError, 0.0);
            f.faults().arm_probability(dma::kFaultStuck, 0.0);
            f.faults().arm_probability(dma::kFaultLostIrq, 0.0);
            f.faults().arm_probability(kFaultAllocFail, 0.0);
        }
        const vm::VAddr src = f.proc.mmap(64 * 4096, vm::PageSize::k4K);
        const vm::VAddr dst = f.proc.mmap(64 * 4096, vm::PageSize::k4K,
                                          f.kernel.fast_node());
        f.submit(MovOp::kReplicate, src, 64, dst);
        f.kernel.run();
        EXPECT_EQ(f.dev.stats().requests_completed, 1u);
        EXPECT_EQ(f.dev.stats().watchdog_timeouts, 0u);
        return f.kernel.eq().now();
    };
    EXPECT_EQ(elapsed(false), elapsed(true));
}

TEST(Recovery, SameSeedReproducesIdenticalOutcome)
{
    auto run = [](std::uint64_t seed) {
        os::KernelConfig kcfg;
        kcfg.fault_seed = seed;
        os::Kernel kernel(kcfg);
        os::Process &proc = kernel.create_process();
        MemifDevice dev(kernel, proc);
        MemifUser user(dev);
        kernel.faults().arm_probability(dma::kFaultTcError, 0.5);
        const vm::VAddr src = proc.mmap(64 * 4096, vm::PageSize::k4K);
        const vm::VAddr dst =
            proc.mmap(64 * 4096, vm::PageSize::k4K, kernel.fast_node());
        for (int r = 0; r < 4; ++r) {
            const std::uint32_t idx = user.alloc_request();
            MovReq &req = user.request(idx);
            req.op = MovOp::kReplicate;
            req.src_base = src + static_cast<vm::VAddr>(r) * 16 * 4096;
            req.dst_base = dst + static_cast<vm::VAddr>(r) * 16 * 4096;
            req.num_pages = 16;
            kernel.spawn(user.submit(idx));
        }
        kernel.run();
        return std::tuple{kernel.eq().now(), dev.stats().dma_errors,
                          dev.stats().dma_retries,
                          dev.stats().fallback_copies};
    };
    EXPECT_EQ(run(1234), run(1234));
    // A different seed picks different victims (with overwhelming
    // probability for 4+ transfers at rate 0.5 — and deterministically
    // for these particular seeds).
    EXPECT_NE(run(1234), run(4321));
}

}  // namespace
}  // namespace memif::core
