/**
 * @file
 * Managed mode (hot-page tracking + migration daemon) against static
 * placement, under fast-node oversubscription.
 *
 * Each cell runs a skewed access loop over a working set sized at
 * 1.5x / 2x / 4x the 6 MB fast node: a hot region swept every pass
 * plus a cold region touched in a slow rotation. Every page access is
 * priced by the node its backing frame lives on *right now*
 * (page_bytes / node bandwidth + a fixed per-access overhead), so
 * placement — not DMA throughput — is what the cell measures. Two
 * mixes: "stream" (sequential hot sweep, read-mostly) and
 * "data_intensive" (strided hot sweep, write-heavy, more cold
 * traffic).
 *
 *   static-worst  everything on DDR; the SRAM sits idle.
 *   static-best   the hot region pre-placed on SRAM by construction
 *                 (an oracle that knew the access pattern up front).
 *   managed       everything starts on DDR; the scan kthread and the
 *                 migration daemon must discover the hot set and move
 *                 it — measured after a warmup window, under both
 *                 placement policies (aging, EWMA).
 *
 * Gates (scripts/check_bench_regression.py): at 2x oversubscription
 * the better managed policy reaches >= 1.3x static-worst and >= 0.70x
 * static-best throughput on at least one mix.  The static-best bound
 * is loose on purpose: the oracle pays no discovery ramp or sampling
 * tax and packs leftover SRAM with cold pages the daemon deliberately
 * never promotes.
 */
#include <algorithm>
#include <cstdio>
#include <vector>

#include "harness.h"

namespace {

using namespace memif;
using namespace memif::bench;

constexpr std::uint64_t kPageBytes = 4096;
/** 6 MB SRAM / 4 KB. */
constexpr std::uint32_t kFastPages = 1536;

struct Shape {
    std::uint32_t hot_pages;
    std::uint32_t sweeps_per_epoch;
    std::uint32_t warmup_epochs;
    std::uint32_t measure_epochs;
};

Shape
shape()
{
    if (quick_mode()) return Shape{384, 4, 8, 8};
    return Shape{768, 4, 10, 16};
}

struct Mix {
    const char *name;
    bool strided_hot;        ///< stride the hot sweep (cache-hostile)
    double hot_write_ratio;  ///< fraction of hot accesses that write
    std::uint32_t cold_rotation;  ///< 1/N of the cold region per sweep
};

constexpr Mix kMixes[] = {
    {"stream", false, 0.0, 16},
    {"data_intensive", true, 0.5, 8},
};

enum class Placement { kWorst, kBest, kManaged };

struct CellOutcome {
    sim::Duration elapsed = 0;   ///< measured epochs only (post warmup)
    std::uint64_t bytes = 0;     ///< bytes accessed in measured epochs
    core::DeviceStats stats{};
    std::uint64_t ping_pongs = 0;

    double gb_per_sec() const { return sim::gb_per_sec(bytes, elapsed); }
};

/**
 * One cell: map hot+cold regions, run warmup + measured access epochs,
 * pricing each access by current residency. Managed cells hand both
 * regions to the daemon and let it figure out which one is hot.
 */
CellOutcome
run_cell(const Mix &mix, std::uint32_t ws_pages, Placement place,
         core::MigratePolicy policy)
{
    const Shape sh = shape();
    core::MemifConfig mc = place == Placement::kManaged
                               ? core::MemifConfig::managed()
                               : core::MemifConfig::mmu_aware();
    if (place == Placement::kManaged) {
        mc.migrate_policy = policy;
        // The cell's hot set is hundreds of pages; the default trickle
        // budget would spend the whole run converging.
        mc.migrate_pages_per_epoch = 512;
        // One scan window must cover at least a full hot sweep
        // (~0.3-0.9 ms here), so every genuinely hot bucket samples
        // accessed every single epoch and classification is stable.
        mc.heat_scan_interval = sim::microseconds(1000);
        // Two consecutive accessed epochs to promote (0x80 >> 1 | 0x80):
        // the cold rotation touches each cold page once per cycle and
        // must never trigger a promotion off that single touch.
        mc.heat_promote_threshold = 0xC0;
        // Settle fast and sleep long: the hot set is steady by
        // construction, so two matching epochs are enough to put a
        // bucket to sleep, and a long dormancy cap keeps probes (and
        // the access-flag traps their re-arms cause) out of the
        // measured window.
        mc.heat_settle_epochs = 2;
        mc.heat_dormant_cap = 64;
    }
    TestBed bed(mc);
    os::Kernel &k = bed.kernel;
    const mem::NodeId slow = k.slow_node();
    const mem::NodeId fast = k.fast_node();
    const double slow_bw = k.phys().node(slow).bandwidth_bps();
    const double fast_bw = k.phys().node(fast).bandwidth_bps();
    const std::uint32_t hot = sh.hot_pages;
    const std::uint32_t cold = ws_pages - hot;

    const vm::VAddr hot_base =
        bed.proc.mmap(std::uint64_t{hot} * kPageBytes, vm::PageSize::k4K,
                      place == Placement::kBest ? fast : slow);
    const vm::VAddr cold_base = bed.proc.mmap(
        std::uint64_t{cold} * kPageBytes, vm::PageSize::k4K, slow);
    MEMIF_ASSERT(hot_base != 0 && cold_base != 0, "working set mmap failed");
    if (place == Placement::kManaged) {
        MEMIF_ASSERT(bed.dev.manage_region(hot_base), "manage hot");
        MEMIF_ASSERT(bed.dev.manage_region(cold_base), "manage cold");
    }
    const vm::Vma *hot_vma = bed.proc.as().find_vma(hot_base);
    const vm::Vma *cold_vma = bed.proc.as().find_vma(cold_base);

    // Price one access by where the page lives right now. Mid-move
    // (migration PTE) pages are priced at the slow rate — the CPU is
    // about to stall on them anyway.
    auto access_cost = [&](const vm::Vma *vma, std::uint32_t page) {
        const vm::Pte pte = vma->pte(page);
        const bool on_fast =
            pte.present && !pte.migration &&
            k.phys().node_of(pte.pfn) == fast;
        const double bw = on_fast ? fast_bw : slow_bw;
        return static_cast<sim::Duration>(
                   static_cast<double>(kPageBytes) * 1e9 / bw) +
               150;  // fixed per-access overhead (ns)
    };

    CellOutcome out;
    std::uint32_t cold_cursor = 0;
    sim::SimTime measure_start = 0;
    auto driver = [&]() -> sim::Task {
        for (std::uint32_t e = 0; e < sh.warmup_epochs + sh.measure_epochs;
             ++e) {
            if (e == sh.warmup_epochs) measure_start = k.eq().now();
            const bool measuring = e >= sh.warmup_epochs;
            for (std::uint32_t s = 0; s < sh.sweeps_per_epoch; ++s) {
                std::uint64_t bytes = 0;
                // Pay for accesses in small batches rather than one
                // lump per sweep: the scanner samples PTEs on a fixed
                // interval, and clustering every touch at the sweep's
                // start makes alternate scan windows see everything /
                // nothing, flapping the classification.
                sim::Duration pending = 0;
                std::uint32_t pending_pages = 0;
                // Hot sweep: every hot page once per sweep.
                for (std::uint32_t i = 0; i < hot; ++i) {
                    const std::uint32_t p =
                        mix.strided_hot ? (i * 17) % hot : i;
                    const bool write =
                        mix.hot_write_ratio > 0.0 &&
                        (i % 100) <
                            static_cast<std::uint32_t>(
                                mix.hot_write_ratio * 100.0);
                    os::TouchOutcome t;
                    co_await bed.proc.touch(
                        hot_base + std::uint64_t{p} * kPageBytes, write,
                        &t);
                    pending += access_cost(hot_vma, p);
                    bytes += kPageBytes;
                    if (++pending_pages == 16) {
                        co_await sim::Delay{k.eq(), pending};
                        pending = 0;
                        pending_pages = 0;
                    }
                }
                // Cold rotation: the next 1/N of the cold region.
                const std::uint32_t chunk =
                    std::max<std::uint32_t>(cold / mix.cold_rotation, 1);
                for (std::uint32_t i = 0; i < chunk; ++i) {
                    const std::uint32_t p = (cold_cursor + i) % cold;
                    os::TouchOutcome t;
                    co_await bed.proc.touch(
                        cold_base + std::uint64_t{p} * kPageBytes, false,
                        &t);
                    pending += access_cost(cold_vma, p);
                    bytes += kPageBytes;
                    if (++pending_pages == 16) {
                        co_await sim::Delay{k.eq(), pending};
                        pending = 0;
                        pending_pages = 0;
                    }
                }
                cold_cursor = (cold_cursor + chunk) % cold;
                if (pending > 0) co_await sim::Delay{k.eq(), pending};
                if (measuring) out.bytes += bytes;
            }
        }
        // Stamp elapsed before the daemon's tail (idle-decay demotions
        // after the app stops) runs the clock further.
        out.elapsed = k.eq().now() - measure_start;
    };
    auto task = driver();
    k.run();
    task.rethrow_if_failed();
    MEMIF_ASSERT(task.done(), "access loop did not finish");
    out.stats = bed.dev.stats();
    out.ping_pongs = bed.dev.heat_ping_pongs();
    return out;
}

const char *
policy_name(core::MigratePolicy p)
{
    return p == core::MigratePolicy::kAging ? "aging" : "ewma";
}

}  // namespace

int
main()
{
    BenchReport report("managed");
    const struct {
        double factor;
        std::uint32_t ws_pages;
    } sizes[] = {{1.5, kFastPages * 3 / 2},
                 {2.0, kFastPages * 2},
                 {4.0, kFastPages * 4}};

    header("Managed mode vs static placement under oversubscription");
    std::printf("%-15s %5s %-14s %8s %9s %6s %6s %5s %5s %9s %9s\n",
                "mix", "ws", "placement", "GB/s", "elapsed_ms", "promo",
                "demo", "drop", "flap", "vs_worst", "vs_best");
    rule();
    for (const Mix &mix : kMixes) {
        for (const auto &sz : sizes) {
            const CellOutcome worst = run_cell(
                mix, sz.ws_pages, Placement::kWorst,
                core::MigratePolicy::kAging);
            const CellOutcome best = run_cell(
                mix, sz.ws_pages, Placement::kBest,
                core::MigratePolicy::kAging);
            auto row = [&](const char *name, const CellOutcome &c,
                           bool managed) {
                const double vs_worst =
                    c.gb_per_sec() / worst.gb_per_sec();
                const double vs_best = c.gb_per_sec() / best.gb_per_sec();
                std::printf(
                    "%-15s %4.1fx %-14s %8.2f %9.1f %6llu %6llu %5llu "
                    "%5llu %8.2fx %8.2fx\n",
                    mix.name, sz.factor, name, c.gb_per_sec(),
                    sim::to_us(c.elapsed) / 1000.0,
                    static_cast<unsigned long long>(
                        c.stats.promotions_completed),
                    static_cast<unsigned long long>(
                        c.stats.demotions_completed),
                    static_cast<unsigned long long>(
                        c.stats.daemon_movs_dropped),
                    static_cast<unsigned long long>(c.ping_pongs),
                    vs_worst, vs_best);
                std::string series =
                    std::string(mix.name) + "-" + name;
                report.add(series, sz.factor, c.gb_per_sec());
                if (managed) {
                    report.add(std::string(mix.name) + "-" + name +
                                   "-vs-worst",
                               sz.factor, vs_worst);
                    report.add(std::string(mix.name) + "-" + name +
                                   "-vs-best",
                               sz.factor, vs_best);
                }
            };
            row("static-worst", worst, false);
            row("static-best", best, false);
            double best_vs_worst = 0.0, best_vs_best = 0.0;
            for (const core::MigratePolicy pol :
                 {core::MigratePolicy::kAging, core::MigratePolicy::kEwma}) {
                const CellOutcome m = run_cell(mix, sz.ws_pages,
                                               Placement::kManaged, pol);
                row((std::string("managed-") + policy_name(pol)).c_str(),
                    m, true);
                best_vs_worst = std::max(
                    best_vs_worst, m.gb_per_sec() / worst.gb_per_sec());
                best_vs_best = std::max(
                    best_vs_best, m.gb_per_sec() / best.gb_per_sec());
            }
            report.add(std::string(mix.name) + "-managed-vs-worst",
                       sz.factor, best_vs_worst);
            report.add(std::string(mix.name) + "-managed-vs-best",
                       sz.factor, best_vs_best);
            rule();
        }
    }
    std::printf("gates: at 2x oversubscription, best managed policy >= "
                "1.3x static-worst and >= 0.70x static-best on at least "
                "one mix\n");
    return 0;
}
