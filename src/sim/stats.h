/**
 * @file
 * Small statistics helpers used by tests and benchmark harnesses:
 * counters, min/max/mean accumulators, and fixed-bucket histograms.
 */
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace memif::sim {

/** Streaming accumulator: count, sum, min, max, mean, stddev. */
class Accumulator {
  public:
    void
    add(double v)
    {
        ++n_;
        sum_ += v;
        sum_sq_ += v * v;
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }

    std::uint64_t count() const { return n_; }
    double sum() const { return sum_; }
    double min() const { return n_ ? min_ : 0.0; }
    double max() const { return n_ ? max_ : 0.0; }
    double mean() const { return n_ ? sum_ / static_cast<double>(n_) : 0.0; }

    double
    stddev() const
    {
        if (n_ < 2) return 0.0;
        const double m = mean();
        const double var =
            (sum_sq_ - static_cast<double>(n_) * m * m) /
            static_cast<double>(n_ - 1);
        return var > 0.0 ? std::sqrt(var) : 0.0;
    }

    void reset() { *this = Accumulator{}; }

  private:
    std::uint64_t n_ = 0;
    double sum_ = 0.0;
    double sum_sq_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/** Samples kept in full, for percentiles over modest populations. */
class Samples {
  public:
    void add(double v) { values_.push_back(v); }
    std::size_t count() const { return values_.size(); }

    double
    percentile(double p) const
    {
        if (values_.empty()) return 0.0;
        std::vector<double> sorted(values_);
        std::sort(sorted.begin(), sorted.end());
        const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
        const std::size_t lo = static_cast<std::size_t>(rank);
        const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
        const double frac = rank - static_cast<double>(lo);
        return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
    }

    double median() const { return percentile(50.0); }

    double
    mean() const
    {
        if (values_.empty()) return 0.0;
        double s = 0.0;
        for (double v : values_) s += v;
        return s / static_cast<double>(values_.size());
    }

    double
    max() const
    {
        double m = 0.0;
        for (double v : values_) m = std::max(m, v);
        return m;
    }

    const std::vector<double> &values() const { return values_; }
    void reset() { values_.clear(); }

  private:
    std::vector<double> values_;
};

}  // namespace memif::sim
