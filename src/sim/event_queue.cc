#include "sim/event_queue.h"

#include <utility>

#include "sim/log.h"

namespace memif::sim {

void
EventQueue::schedule_at(SimTime when, Callback cb)
{
    MEMIF_ASSERT(cb != nullptr);
    if (when < now_) when = now_;  // never schedule into the past
    events_.push(Event{when, next_seq_++, std::move(cb)});
}

void
EventQueue::schedule_after(Duration delay, Callback cb)
{
    schedule_at(now_ + delay, std::move(cb));
}

bool
EventQueue::step()
{
    if (events_.empty()) return false;
    // Move the callback out before popping so the event may schedule
    // new events (including at the same timestamp) safely.
    Event ev = events_.top();
    events_.pop();
    MEMIF_ASSERT(ev.when >= now_);
    now_ = ev.when;
    ++executed_;
    ev.cb();
    return true;
}

std::uint64_t
EventQueue::run()
{
    std::uint64_t n = 0;
    while (step()) ++n;
    return n;
}

std::uint64_t
EventQueue::run_until(SimTime deadline)
{
    std::uint64_t n = 0;
    while (!events_.empty() && events_.top().when <= deadline) {
        step();
        ++n;
    }
    if (now_ < deadline) now_ = deadline;
    return n;
}

}  // namespace memif::sim
