/**
 * @file
 * Tiled matrix multiply with SRAM tile staging — the 2D-descriptor
 * case study for the strided_dma lever.
 *
 * C[M x N] += A[M x K] * B[K x N], all row-major floats in slow DDR.
 * The inner loops run over T x T tiles whose A and B operands are
 * staged into scratchpad SRAM first; a row of a DDR tile is
 * `row_bytes = T * 4` bytes read `K * 4` (or `N * 4`) apart, packed
 * dense (`dst_pitch = row_bytes`) into the SRAM tile — exactly the
 * pitched geometry memif_mov_strided() carries in one request.
 *
 * Three staging strategies, same arithmetic:
 *  - kStrided: one strided replication per tile (the tentpole path);
 *  - kPerRowFlat: one rows==1 request per tile row — the pre-PR-10
 *    workaround, paying per-request interface costs T times per tile;
 *  - kCpuCopy: the CPU packs tiles itself with pitched memcpy, charged
 *    at the cost model's CPU copy rate (no memif at all).
 *
 * With double buffering the next tile pair is staged while the current
 * one is multiplied, so DMA time hides behind compute; overlap_ratio()
 * reports how much of it hid. The compute is real float arithmetic
 * over the staged backing bytes, so the checksum proves the pitched
 * transfers delivered byte-exact tiles (all strategies must agree).
 */
#pragma once

#include <cstdint>

#include "sim/task.h"
#include "sim/types.h"

namespace memif::os {
class Kernel;
class Process;
}  // namespace memif::os

namespace memif::workloads {

/** How A/B tiles reach the SRAM scratchpad. */
enum class TileStaging {
    kStrided,     ///< one memif_mov_strided per tile
    kPerRowFlat,  ///< one rows==1 request per tile row
    kCpuCopy,     ///< CPU pitched memcpy, no memif
};

/** Problem and staging geometry. */
struct TileMatmulConfig {
    std::uint32_t m = 256;  ///< rows of A and C
    std::uint32_t n = 256;  ///< columns of B and C
    std::uint32_t k = 256;  ///< columns of A == rows of B
    std::uint32_t tile = 64;         ///< T (must divide m, n, k)
    TileStaging staging = TileStaging::kStrided;
    bool double_buffer = true;  ///< stage pair kk+1 under compute kk
    /** False: staging-only sweep — skip the FMA loops (and their
     *  modelled time) to expose pure staging throughput. */
    bool compute = true;
    /** Deterministic seed for the A/B element values. */
    std::uint64_t seed = 1;
};

/** Outcome of one run; all times are virtual. */
struct TileMatmulResult {
    sim::Duration elapsed = 0;        ///< whole run, wall (virtual)
    sim::Duration compute_total = 0;  ///< modelled FMA time, summed
    sim::Duration dma_total = 0;      ///< per-pair staging spans, summed
    std::uint64_t bytes_staged = 0;   ///< tile payload through staging
    std::uint64_t tiles_staged = 0;
    std::uint64_t requests_submitted = 0;  ///< memif requests issued
    std::uint64_t checksum = 0;  ///< FNV over staged tiles (+ C)

    /**
     * Fraction of staging time hidden behind compute:
     * clamp((compute_total + dma_total - elapsed) / dma_total, 0, 1).
     * Zero when nothing was DMA-staged.
     */
    double overlap_ratio() const;

    /** Staged MB/s over the whole run (staging-only sweeps). */
    double staging_mb_per_sec() const;
};

/**
 * Run the workload on @p memfd (an open descriptor on a device of
 * @p proc; the device's strided_dma lever must be on for the DMA
 * staging modes). Maps A/B/C in slow memory and the tile buffers in
 * fast memory, fills A/B from cfg.seed, multiplies, and reports into
 * @p out. Coroutine — spawn on the kernel and run() to completion.
 */
sim::Task run_tile_matmul(os::Kernel &kernel, os::Process &proc,
                          int memfd, const TileMatmulConfig &cfg,
                          TileMatmulResult *out);

}  // namespace memif::workloads
