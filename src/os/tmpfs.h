/**
 * @file
 * A small in-memory filesystem with a page cache, so file-backed
 * mappings exist in the simulation. The paper's prototype "can only
 * move anonymous pages but not pages backed by files" (§6.7); with
 * this substrate the memif driver can faithfully *reject* file pages
 * by default and, as the implemented future-work extension, move them
 * by relocating the page-cache frame along with every mapping.
 *
 * Files are fully cached (tmpfs semantics): the page cache *is* the
 * backing store. Cache frames live on the slow node and carry a
 * kPageCache reverse-map entry so they are never freed while cached.
 */
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "mem/phys.h"
#include "vm/file_backing.h"

namespace memif::os {

class Kernel;

class TmpFs {
  public:
    class File : public vm::FileBacking {
      public:
        File(TmpFs &fs, std::string name, std::uint64_t num_pages);
        ~File() override;
        File(const File &) = delete;
        File &operator=(const File &) = delete;

        const std::string &name() const { return name_; }
        std::uint64_t num_pages() const { return cache_.size(); }
        std::uint64_t size_bytes() const { return cache_.size() * 4096; }

        /** Write @p len bytes at byte @p offset (bounds-checked). */
        bool pwrite(std::uint64_t offset, const void *data,
                    std::uint64_t len);
        /** Read @p len bytes at byte @p offset. */
        bool pread(std::uint64_t offset, void *out, std::uint64_t len);

        // ----- vm::FileBacking -----------------------------------------
        void relocate(std::uint64_t page_index, mem::Pfn new_pfn) override;
        mem::Pfn cached_pfn(std::uint64_t page_index) const override;

      private:
        TmpFs &fs_;
        std::string name_;
        std::vector<mem::Pfn> cache_;  ///< one frame per file page
    };

    explicit TmpFs(Kernel &kernel) : kernel_(kernel) {}
    TmpFs(const TmpFs &) = delete;
    TmpFs &operator=(const TmpFs &) = delete;

    /**
     * Create a file of @p num_pages 4 KB pages, fully allocated in the
     * page cache (tmpfs). @return nullptr if the name exists or memory
     * is exhausted.
     */
    File *create(const std::string &name, std::uint64_t num_pages);

    /** Look a file up. */
    File *open(const std::string &name);

    /** Delete a file; its cache frames return to the buddy. The file
     *  must no longer be mapped anywhere. */
    bool unlink(const std::string &name);

    std::size_t file_count() const { return files_.size(); }
    Kernel &kernel() { return kernel_; }

  private:
    Kernel &kernel_;
    std::map<std::string, std::unique_ptr<File>> files_;
};

}  // namespace memif::os
