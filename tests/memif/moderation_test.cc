/**
 * @file
 * Tests for the completion-batching levers: engine-level interrupt
 * moderation (count threshold, holdoff timer, NAPI-style masking,
 * error bypass), the EWMA completion controller, the multi-request
 * completion drain, kernel-thread reaping, and both race policies
 * under the full moderated() configuration. Every lever must be
 * invisible except in time and counters: final memory images and
 * request statuses match the default path exactly.
 */
#include "memif/device.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "dma/descriptor.h"
#include "dma/engine.h"
#include "memif/completion_ctl.h"
#include "memif/user_api.h"
#include "os/kernel.h"
#include "os/process.h"
#include "sim/cost_model.h"
#include "sim/event_queue.h"
#include "sim/types.h"

namespace memif::core {
namespace {

// --------------------------------------------------------------------
// Engine-level moderation mechanics.
// --------------------------------------------------------------------

struct EngineFixture {
    sim::EventQueue eq;
    mem::PhysicalMemory pm;
    sim::CostModel cm;
    mem::NodeId slow, fast;
    sim::FaultInjector faults;
    dma::Edma3Engine engine{eq, pm, cm, &faults};

    EngineFixture()
    {
        auto ids = mem::KeystoneMemory::build(pm, 32ull << 20);
        slow = ids.first;
        fast = ids.second;
    }

    /** Program descriptor @p idx with a one-page slow->fast copy. */
    dma::DescIndex
    page_chain(dma::DescIndex idx, std::uint8_t seed)
    {
        const mem::Pfn src = pm.allocate(slow, 0);
        const mem::Pfn dst = pm.allocate(fast, 0);
        std::memset(pm.span(src, mem::kPageSize), seed, mem::kPageSize);
        engine.param_ram().write_full(
            idx, dma::TransferDescriptor::contiguous(
                     src << mem::kPageShift, dst << mem::kPageShift,
                     mem::kPageSize));
        return idx;
    }
};

TEST(ModerationEngine, BatchThresholdCoalescesIntoOneIrq)
{
    EngineFixture f;
    // Holdoff far in the future: only the count threshold can flush.
    f.engine.configure_moderation(3, sim::milliseconds(10));
    int fired = 0;
    for (dma::DescIndex i = 0; i < 3; ++i)
        f.engine.start_chain(f.page_chain(i, 0x40 + i), 0, true,
                             [&](dma::TransferId) { ++fired; },
                             /*moderated=*/true);
    f.eq.run();
    EXPECT_EQ(fired, 3);
    const auto &s = f.engine.stats();
    EXPECT_EQ(s.interrupts_raised, 1u);  // one IRQ for three chains
    EXPECT_EQ(s.moderated_irqs, 1u);
    EXPECT_EQ(s.moderated_completions, 3u);
    EXPECT_EQ(s.moderation_timer_flushes, 0u);
}

TEST(ModerationEngine, HoldoffTimerFlushesPartialBatch)
{
    EngineFixture f;
    f.engine.configure_moderation(8, sim::microseconds(10));
    sim::SimTime delivered = 0;
    const dma::TransferId id = f.engine.start_chain(
        f.page_chain(0, 0x51), 0, true,
        [&](dma::TransferId) { delivered = f.eq.now(); },
        /*moderated=*/true);
    const sim::SimTime done = f.engine.completion_time(id);
    f.eq.run();
    // A lone completion is held exactly one holdoff, then delivered by
    // the timer in a single (degenerate) coalesced IRQ.
    EXPECT_EQ(delivered, done + sim::microseconds(10));
    EXPECT_EQ(f.engine.stats().interrupts_raised, 1u);
    EXPECT_EQ(f.engine.stats().moderation_timer_flushes, 1u);
}

TEST(ModerationEngine, TcErrorBypassesModeration)
{
    // The CC error line is separate from the completion line: a TC
    // error on a moderated chain is delivered at completion time, not
    // a holdoff later — moderation never extends time-to-detection.
    EngineFixture f;
    f.engine.configure_moderation(8, sim::microseconds(10));
    f.faults.arm_nth(dma::kFaultTcError, 1);
    sim::SimTime delivered = 0;
    const dma::TransferId id = f.engine.start_chain(
        f.page_chain(0, 0x62), 0, true,
        [&](dma::TransferId) { delivered = f.eq.now(); },
        /*moderated=*/true);
    const sim::SimTime done = f.engine.completion_time(id);
    f.eq.run();
    EXPECT_EQ(delivered, done);
    EXPECT_EQ(f.engine.status(id), dma::TransferStatus::kError);
    EXPECT_EQ(f.engine.stats().moderated_irqs, 0u);
    EXPECT_EQ(f.engine.stats().interrupts_raised, 1u);
}

TEST(ModerationEngine, MaskAccumulatesAndUnmaskFlushesOnce)
{
    EngineFixture f;
    // Batch of 2 would flush immediately — unless masked.
    f.engine.configure_moderation(2, sim::microseconds(10));
    f.engine.mask_moderation();
    int fired = 0;
    for (dma::DescIndex i = 0; i < 2; ++i)
        f.engine.start_chain(f.page_chain(i, 0x70 + i), 0, true,
                             [&](dma::TransferId) { ++fired; },
                             /*moderated=*/true);
    f.eq.run();
    EXPECT_EQ(fired, 0);  // held silently: no threshold, no timer
    EXPECT_EQ(f.engine.moderation_pending(0), 2u);
    f.engine.unmask_moderation();
    EXPECT_EQ(fired, 2);  // unmask flushes whatever the poller left
    EXPECT_EQ(f.engine.stats().interrupts_raised, 1u);
}

TEST(ModerationEngine, DiscardDropsHeldDeliveryAndPurges)
{
    EngineFixture f;
    f.engine.mask_moderation();
    int fired = 0;
    const dma::TransferId id = f.engine.start_chain(
        f.page_chain(0, 0x33), 0, true,
        [&](dma::TransferId) { ++fired; },
        /*moderated=*/true);
    f.eq.run();
    EXPECT_TRUE(f.engine.is_complete(id));
    EXPECT_TRUE(f.engine.discard_moderated(id));
    EXPECT_FALSE(f.engine.discard_moderated(id));  // idempotent
    f.engine.unmask_moderation();
    f.eq.run();
    EXPECT_EQ(fired, 0);  // delivery was dropped, not deferred
    EXPECT_EQ(f.engine.stats().interrupts_raised, 0u);
    // No longer held -> the record is purgeable.
    EXPECT_GE(f.engine.purge_finished(), 1u);
}

// --------------------------------------------------------------------
// EWMA completion controller.
// --------------------------------------------------------------------

TEST(CompletionCtl, ColdBucketsFallBackToStaticRule)
{
    sim::CostModel cm;
    CompletionController ctl(cm, /*static_threshold=*/512 * 1024);
    EXPECT_EQ(ctl.choose(4096, 0), CompletionMode::kPolled);
    EXPECT_EQ(ctl.choose(4096, 5), CompletionMode::kModerated);
    EXPECT_EQ(ctl.choose(1 << 20, 0), CompletionMode::kInterrupt);
    EXPECT_EQ(ctl.decisions().cold_fallbacks, 3u);
    EXPECT_EQ(ctl.predict(4096), 0);  // cold: no trusted estimate
}

TEST(CompletionCtl, LearnsToPollWhenDmaBeatsIrqPath)
{
    sim::CostModel cm;
    const double irq_path =
        static_cast<double>(cm.irq_overhead + cm.kthread_wakeup);
    CompletionController ctl(cm, 512 * 1024);
    for (std::uint32_t i = 0; i < CompletionController::kWarmupSamples;
         ++i)
        ctl.observe(4096, sim::nanoseconds(1600), sim::nanoseconds(2000));
    ASSERT_GT(ctl.predict(4096), 0);
    ASSERT_LT(static_cast<double>(ctl.predict(4096)), irq_path);
    EXPECT_EQ(ctl.choose(4096, 0), CompletionMode::kPolled);
    // Backlog always wins: coalescing beats parking the worker.
    EXPECT_EQ(ctl.choose(4096, 4), CompletionMode::kModerated);
    EXPECT_GE(ctl.decisions().polled, 1u);
    EXPECT_GE(ctl.decisions().moderated, 1u);
}

TEST(CompletionCtl, LearnsToInterruptWhenDmaIsSlow)
{
    sim::CostModel cm;
    CompletionController ctl(cm, 512 * 1024);
    // 4 KB bucket measured far slower than the interrupt round-trip
    // (say, a congested interconnect): the static rule would poll and
    // pin the core; the learned rule must not.
    for (std::uint32_t i = 0; i < CompletionController::kWarmupSamples;
         ++i)
        ctl.observe(4096, sim::nanoseconds(1600), sim::microseconds(50));
    EXPECT_EQ(ctl.choose(4096, 0), CompletionMode::kInterrupt);
    // A noisy prediction is also distrusted even when its mean is low.
    CompletionController noisy(cm, 512 * 1024);
    for (std::uint32_t i = 0; i < CompletionController::kWarmupSamples;
         ++i) {
        noisy.observe(8192, sim::nanoseconds(1000),
                      i % 2 ? sim::nanoseconds(100)
                            : sim::microseconds(12));
    }
    EXPECT_EQ(noisy.choose(8192, 0), CompletionMode::kInterrupt);
}

// --------------------------------------------------------------------
// Device-level: drains, reaping, policies, recovery.
// --------------------------------------------------------------------

struct Fixture {
    os::Kernel kernel;
    os::Process &proc;
    MemifDevice dev;
    MemifUser user;

    explicit Fixture(MemifConfig cfg = {})
        : proc(kernel.create_process()),
          dev(kernel, proc, cfg),
          user(dev)
    {
    }

    ~Fixture()
    {
        // Every test must hand the driver back fully quiesced: no
        // in-flight records, leased descriptors, stuck slots, parked
        // frames unaccounted for, or stale xlate entries. Tests that
        // intentionally end mid-flight opt out via the flag.
        if (!check_quiesce_on_teardown) return;
        std::string why;
        EXPECT_TRUE(dev.check_quiesced(&why)) << "teardown: " << why;
    }

    /** Opt-out for tests that deliberately leave work in flight. */
    bool check_quiesce_on_teardown = true;

    sim::FaultInjector &faults() { return kernel.faults(); }

    void
    fill(vm::VAddr base, std::uint64_t bytes, std::uint8_t seed)
    {
        std::vector<std::uint8_t> buf(bytes);
        for (std::uint64_t i = 0; i < bytes; ++i)
            buf[i] = static_cast<std::uint8_t>(seed + i * 13);
        ASSERT_TRUE(proc.as().write(base, buf.data(), bytes));
    }

    bool
    check(vm::VAddr base, std::uint64_t bytes, std::uint8_t seed)
    {
        std::vector<std::uint8_t> buf(bytes);
        if (!proc.as().read(base, buf.data(), bytes)) return false;
        for (std::uint64_t i = 0; i < bytes; ++i)
            if (buf[i] != static_cast<std::uint8_t>(seed + i * 13))
                return false;
        return true;
    }

    std::uint32_t
    submit(MovOp op, vm::VAddr src, std::uint32_t npages,
           vm::VAddr dst_or_node)
    {
        const std::uint32_t idx = user.alloc_request();
        EXPECT_NE(idx, kNoRequest);
        MovReq &req = user.request(idx);
        req.op = op;
        req.src_base = src;
        req.num_pages = npages;
        if (op == MovOp::kReplicate)
            req.dst_base = dst_or_node;
        else
            req.dst_node = static_cast<std::uint32_t>(dst_or_node);
        kernel.spawn(user.submit(idx));
        return idx;
    }

    /** Place a populated request directly on the submission queue, the
     *  state SubmitRequest leaves it in after a flush — lets a test
     *  drive ioctl_mov_one() itself without the library kicking. */
    std::uint32_t
    stage_direct(MovOp op, vm::VAddr src, std::uint32_t npages,
                 vm::VAddr dst_or_node)
    {
        const std::uint32_t idx = user.alloc_request();
        EXPECT_NE(idx, kNoRequest);
        MovReq &req = user.request(idx);
        req.op = op;
        req.src_base = src;
        req.num_pages = npages;
        if (op == MovOp::kReplicate)
            req.dst_base = dst_or_node;
        else
            req.dst_node = static_cast<std::uint32_t>(dst_or_node);
        req.submit_time = kernel.eq().now();
        req.store_status(MovStatus::kSubmitted);
        dev.region().submission_queue().enqueue(idx);
        return idx;
    }
};

TEST(Moderation, BackstopDrainRetiresCoalescedBatchInOnePass)
{
    // Two moderated transfers complete while the kernel thread sleeps:
    // the holdoff timer flushes both in ONE coalesced IRQ, and the
    // first handler's drain pass claims and retires the sibling — one
    // IRQ-entry charge, one wakeup, for two requests. B is kept small,
    // and the holdoff widened a little past the default, so B's
    // completion (serialised behind A's syscall charges and A's copy on
    // the shared TC) lands inside A's window while staying far below
    // both watchdog deadlines.
    MemifConfig cfg = MemifConfig::moderated();
    cfg.multi_tc_dispatch = false;  // same TC -> one moderation batch
    cfg.moderation_holdoff = sim::microseconds(16);
    Fixture f(cfg);
    const vm::VAddr src = f.proc.mmap(18 * 4096, vm::PageSize::k4K);
    const vm::VAddr dst =
        f.proc.mmap(18 * 4096, vm::PageSize::k4K, f.kernel.fast_node());
    f.fill(src, 16 * 4096, 29);
    f.fill(src + 16 * 4096, 2 * 4096, 31);

    const std::uint32_t a =
        f.stage_direct(MovOp::kReplicate, src, 16, dst);
    const std::uint32_t b = f.stage_direct(
        MovOp::kReplicate, src + 16 * 4096, 2, dst + 16 * 4096);
    f.kernel.spawn(f.dev.ioctl_mov_one());
    f.kernel.spawn(f.dev.ioctl_mov_one());
    f.kernel.run();

    EXPECT_EQ(f.user.request(a).load_status(), MovStatus::kDone);
    EXPECT_EQ(f.user.request(b).load_status(), MovStatus::kDone);
    EXPECT_TRUE(f.check(dst, 16 * 4096, 29));
    EXPECT_TRUE(f.check(dst + 16 * 4096, 2 * 4096, 31));
    const auto &es = f.kernel.dma_engine().stats();
    const DeviceStats &ds = f.dev.stats();
    EXPECT_EQ(es.moderated_irqs, 1u);
    EXPECT_EQ(es.interrupts_raised, 1u);
    // Only A is delivered by the coalesced IRQ: A's handler drains B
    // (claim + discard) before the flush loop reaches B's entry, so B
    // is accounted under drained_requests instead.
    EXPECT_EQ(es.moderated_completions, 1u);
    EXPECT_EQ(ds.moderated_dispatches, 2u);
    EXPECT_EQ(ds.irq_completions, 2u);
    EXPECT_EQ(ds.completion_drains, 1u);
    EXPECT_EQ(ds.drained_requests, 1u);
    EXPECT_EQ(ds.kthread_wakeups, 1u);  // one wakeup for the batch
    EXPECT_EQ(ds.wakeups_from_sleep, 1u);
}

TEST(Moderation, RunningKthreadReapsWithoutInterrupts)
{
    // A stream served by the kernel thread: while it is awake the
    // moderated IRQ is masked and completions are reaped from the
    // flight table — far fewer interrupts and wakeups than requests.
    Fixture f(MemifConfig::moderated());
    const vm::VAddr src = f.proc.mmap(128 * 4096, vm::PageSize::k4K);
    const vm::VAddr dst =
        f.proc.mmap(128 * 4096, vm::PageSize::k4K, f.kernel.fast_node());
    f.fill(src, 128 * 4096, 3);

    auto app = [&]() -> sim::Task {
        for (int r = 0; r < 8; ++r) {
            const std::uint32_t idx = f.user.alloc_request();
            MovReq &req = f.user.request(idx);
            req.op = MovOp::kReplicate;
            req.src_base = src + static_cast<vm::VAddr>(r) * 16 * 4096;
            req.dst_base = dst + static_cast<vm::VAddr>(r) * 16 * 4096;
            req.num_pages = 16;
            co_await f.user.submit(idx);
        }
    };
    f.kernel.spawn(app());
    f.kernel.run();

    EXPECT_TRUE(f.check(dst, 128 * 4096, 3));
    int completed = 0;
    while (f.user.retrieve_completed() != kNoRequest) ++completed;
    EXPECT_EQ(completed, 8);
    const auto &es = f.kernel.dma_engine().stats();
    const DeviceStats &ds = f.dev.stats();
    // Every completion is accounted to exactly one path.
    EXPECT_EQ(ds.irq_completions + ds.polled_completions +
                  ds.reaped_completions,
              8u);
    EXPECT_GT(ds.reaped_completions, 0u);
    // Moderation + reaping: interrupts and wakeups stay far below one
    // per request (the acceptance property the fig. 7 stream cells
    // measure at scale).
    EXPECT_LT(es.interrupts_raised, 4u);
    EXPECT_LT(ds.kthread_wakeups, 4u);
    EXPECT_EQ(ds.kthread_wakeups,
              ds.wakeups_from_sleep + ds.notifies_while_running);
}

TEST(Moderation, TcErrorRecoveryUnchangedUnderModeration)
{
    // A held IRQ must never mask a TC error: the retry ladder runs
    // exactly as in the pipelined config and the retry replays the
    // coalesced SG byte-for-byte.
    for (const RacePolicy policy :
         {RacePolicy::kRecover, RacePolicy::kPrevent}) {
        MemifConfig cfg = MemifConfig::moderated();
        cfg.race_policy = policy;
        Fixture f(cfg);
        const vm::VAddr base = f.proc.mmap(32 * 4096, vm::PageSize::k4K);
        f.fill(base, 32 * 4096, 19);
        f.faults().arm_nth(dma::kFaultTcError, 1);

        const std::uint32_t idx =
            f.submit(MovOp::kMigrate, base, 32, f.kernel.fast_node());
        f.kernel.run();

        EXPECT_EQ(f.user.request(idx).load_status(), MovStatus::kDone);
        EXPECT_TRUE(f.check(base, 32 * 4096, 19))
            << "policy=" << static_cast<int>(policy);
        vm::Vma *vma = f.proc.as().find_vma(base);
        for (std::uint64_t i = 0; i < 32; ++i)
            EXPECT_EQ(f.kernel.phys().node_of(vma->pte(i).pfn),
                      f.kernel.fast_node());
        EXPECT_EQ(f.dev.stats().dma_errors, 1u);
        EXPECT_EQ(f.dev.stats().dma_retries, 1u);
    }
}

TEST(Moderation, ExhaustedRetriesRollBackWhileSiblingIrqHeld)
{
    // Rollback with a moderated IRQ pending: request A completes and
    // its delivery is held; request B exhausts its retries and falls
    // back to the CPU copy. Both must reach terminal states with the
    // exact bytes the default path produces.
    for (const RacePolicy policy :
         {RacePolicy::kRecover, RacePolicy::kPrevent}) {
        MemifConfig cfg = MemifConfig::moderated();
        cfg.multi_tc_dispatch = false;
        cfg.race_policy = policy;
        Fixture f(cfg);
        const vm::VAddr src = f.proc.mmap(32 * 4096, vm::PageSize::k4K);
        const vm::VAddr dst = f.proc.mmap(32 * 4096, vm::PageSize::k4K,
                                          f.kernel.fast_node());
        f.fill(src, 32 * 4096, 77);
        // Occurrence 1 (request A) is clean; occurrences 2-5 cover
        // request B's initial attempt plus all dma_max_retries.
        f.faults().arm_nth(dma::kFaultTcError, 2, 4);

        const std::uint32_t a =
            f.stage_direct(MovOp::kReplicate, src, 16, dst);
        const std::uint32_t b = f.stage_direct(
            MovOp::kReplicate, src + 16 * 4096, 16, dst + 16 * 4096);
        f.kernel.spawn(f.dev.ioctl_mov_one());
        f.kernel.spawn(f.dev.ioctl_mov_one());
        f.kernel.run();

        EXPECT_EQ(f.user.request(a).load_status(), MovStatus::kDone);
        EXPECT_EQ(f.user.request(b).load_status(), MovStatus::kDone);
        EXPECT_TRUE(f.check(dst, 32 * 4096, 77))
            << "policy=" << static_cast<int>(policy);
        EXPECT_EQ(f.dev.stats().fallback_copies, 1u);
        EXPECT_EQ(f.dev.stats().dma_retries, 3u);
        EXPECT_TRUE(f.dev.idle());
    }
}

TEST(Moderation, WatchdogDetectionTimeUnchangedWithModerationOn)
{
    // A stuck transfer under the full moderated config: the watchdog
    // (not the holdoff timer) detects it, cancels, and the retry —
    // which bypasses moderation — completes the request.
    Fixture f(MemifConfig::moderated());
    const vm::VAddr src = f.proc.mmap(16 * 4096, vm::PageSize::k4K);
    const vm::VAddr dst =
        f.proc.mmap(16 * 4096, vm::PageSize::k4K, f.kernel.fast_node());
    f.fill(src, 16 * 4096, 66);
    f.faults().arm_nth(dma::kFaultStuck, 1);

    const std::uint32_t idx = f.submit(MovOp::kReplicate, src, 16, dst);
    f.kernel.run();

    EXPECT_EQ(f.user.request(idx).load_status(), MovStatus::kDone);
    EXPECT_TRUE(f.check(dst, 16 * 4096, 66));
    EXPECT_EQ(f.dev.stats().watchdog_timeouts, 1u);
    EXPECT_EQ(f.dev.stats().dma_retries, 1u);
    EXPECT_EQ(f.kernel.dma_engine().stats().transfers_cancelled, 1u);
}

TEST(Moderation, LostIrqStillCaughtByWatchdogUnderModeration)
{
    Fixture f(MemifConfig::moderated());
    const vm::VAddr src = f.proc.mmap(16 * 4096, vm::PageSize::k4K);
    const vm::VAddr dst =
        f.proc.mmap(16 * 4096, vm::PageSize::k4K, f.kernel.fast_node());
    f.fill(src, 16 * 4096, 55);
    f.faults().arm_nth(dma::kFaultLostIrq, 1);

    const std::uint32_t idx = f.submit(MovOp::kReplicate, src, 16, dst);
    f.kernel.run();

    EXPECT_EQ(f.user.request(idx).load_status(), MovStatus::kDone);
    EXPECT_TRUE(f.check(dst, 16 * 4096, 55));
    EXPECT_EQ(f.dev.stats().watchdog_timeouts, 1u);
    EXPECT_EQ(f.dev.stats().dma_retries, 0u);
}

TEST(Moderation, PreventPolicyStreamDrainsWithSharedShootdown)
{
    // kPrevent + moderated: deferred releases drain through the kernel
    // thread in batches with a shared ranged shootdown; every request
    // still ends Done and the PTEs land on the fast node.
    MemifConfig cfg = MemifConfig::moderated();
    cfg.race_policy = RacePolicy::kPrevent;
    Fixture f(cfg);
    const vm::VAddr base = f.proc.mmap(64 * 4096, vm::PageSize::k4K);
    f.fill(base, 64 * 4096, 45);

    std::vector<std::uint32_t> idxs;
    auto app = [&]() -> sim::Task {
        for (int r = 0; r < 4; ++r) {
            const std::uint32_t idx = f.user.alloc_request();
            MovReq &req = f.user.request(idx);
            req.op = MovOp::kMigrate;
            req.src_base = base + static_cast<vm::VAddr>(r) * 16 * 4096;
            req.num_pages = 16;
            req.dst_node = f.kernel.fast_node();
            idxs.push_back(idx);
            co_await f.user.submit(idx);
        }
    };
    f.kernel.spawn(app());
    f.kernel.run();

    for (const std::uint32_t idx : idxs)
        EXPECT_EQ(f.user.request(idx).load_status(), MovStatus::kDone);
    EXPECT_TRUE(f.check(base, 64 * 4096, 45));
    vm::Vma *vma = f.proc.as().find_vma(base);
    for (std::uint64_t i = 0; i < 64; ++i)
        EXPECT_EQ(f.kernel.phys().node_of(vma->pte(i).pfn),
                  f.kernel.fast_node());
    EXPECT_GT(f.dev.stats().ranged_tlb_flushes, 0u);
    EXPECT_TRUE(f.dev.idle());
}

TEST(Moderation, BatchSubmitMakesOneCrossingForManyRequests)
{
    // submit_many(): N requests, one syscall crossing — against N
    // one-at-a-time submissions costing one crossing each when every
    // submission starts an idle period.
    Fixture single(MemifConfig::moderated());
    {
        const vm::VAddr src = single.proc.mmap(64 * 4096, vm::PageSize::k4K);
        const vm::VAddr dst = single.proc.mmap(
            64 * 4096, vm::PageSize::k4K, single.kernel.fast_node());
        single.fill(src, 64 * 4096, 9);
        for (int r = 0; r < 8; ++r) {
            single.submit(MovOp::kReplicate,
                          src + static_cast<vm::VAddr>(r) * 8 * 4096, 8,
                          dst + static_cast<vm::VAddr>(r) * 8 * 4096);
            single.kernel.run();  // each idle period forces a fresh kick
        }
        EXPECT_EQ(single.kernel.syscall_stats().crossings, 8u);
    }

    Fixture batched(MemifConfig::moderated());
    const vm::VAddr src = batched.proc.mmap(64 * 4096, vm::PageSize::k4K);
    const vm::VAddr dst = batched.proc.mmap(64 * 4096, vm::PageSize::k4K,
                                            batched.kernel.fast_node());
    batched.fill(src, 64 * 4096, 9);
    std::vector<std::uint32_t> idxs;
    for (int r = 0; r < 8; ++r) {
        const std::uint32_t idx = batched.user.alloc_request();
        MovReq &req = batched.user.request(idx);
        req.op = MovOp::kReplicate;
        req.src_base = src + static_cast<vm::VAddr>(r) * 8 * 4096;
        req.dst_base = dst + static_cast<vm::VAddr>(r) * 8 * 4096;
        req.num_pages = 8;
        idxs.push_back(idx);
    }
    batched.kernel.spawn(batched.user.submit_many(idxs));
    batched.kernel.run();

    EXPECT_TRUE(batched.check(dst, 64 * 4096, 9));
    int completed = 0;
    while (batched.user.retrieve_completed() != kNoRequest) ++completed;
    EXPECT_EQ(completed, 8);
    // One crossing and one kick for the whole batch: 8x fewer.
    EXPECT_EQ(batched.kernel.syscall_stats().crossings, 1u);
    EXPECT_EQ(batched.user.stats().kicks, 1u);
    EXPECT_EQ(batched.user.stats().batch_submits, 1u);
    EXPECT_EQ(batched.user.stats().submits, 8u);
}

}  // namespace
}  // namespace memif::core
