/**
 * @file
 * EWMA-driven hybrid completion controller (the adaptive replacement
 * for the paper's static poll_threshold_bytes, §5.4).
 *
 * The paper's kernel thread picks polling vs. interrupts with one fixed
 * byte threshold. That is the right call for the calibrated KeyStone II
 * numbers, but it bakes in the platform: move the bandwidths or the IRQ
 * cost and the crossover moves with them. The controller instead learns
 * the crossover online: it tracks, per log2-size bucket, an EWMA of the
 * *actual* DMA completion time and of the absolute prediction error,
 * and decides each transfer's completion mode from what it has seen —
 *
 *   - kPolled     the predicted wait is shorter than the interrupt
 *                 round-trip and the kthread has nothing else to do, so
 *                 burning the wait on the core is the cheap option;
 *   - kModerated  a backlog is building, so completions will coalesce
 *                 and one moderated IRQ retires the batch;
 *   - kInterrupt  everything else (and whenever the prediction is too
 *                 noisy to trust — polling on a bad guess pins a core).
 *
 * Cold buckets fall back to the static threshold, so behaviour before
 * the first few observations is exactly the paper's. The controller is
 * pure policy: no simulation time is charged here.
 */
#pragma once

#include <array>
#include <cstdint>

#include "sim/cost_model.h"
#include "sim/types.h"

namespace memif {

/** How a transfer's completion is observed (device-side view). */
enum class CompletionMode : std::uint8_t {
    kPolled = 0,   ///< kthread spin-polls is_complete()
    kInterrupt,    ///< one completion IRQ per transfer
    kModerated,    ///< completion IRQ joins the per-TC moderation batch
};

class CompletionController {
  public:
    /** Observations before a bucket's prediction is trusted. */
    static constexpr std::uint32_t kWarmupSamples = 3;

    /**
     * @param cm                the platform cost model (for the
     *                          interrupt-path cost the poll decision
     *                          competes against)
     * @param static_threshold  fallback poll threshold in bytes (the
     *                          paper's poll_threshold_bytes) used while
     *                          a bucket is cold
     * @param alpha             EWMA smoothing factor in (0, 1]; higher
     *                          adapts faster, lower smooths more
     */
    CompletionController(const sim::CostModel &cm,
                         std::uint64_t static_threshold,
                         double alpha = 0.25);

    /**
     * Pick the completion mode for a transfer of @p bytes given
     * @p backlog requests already queued behind it. Deterministic for
     * a given observation history.
     */
    CompletionMode choose(std::uint64_t bytes, std::size_t backlog);

    /**
     * Feed back one completed transfer: @p predicted is what the engine
     * model quoted before the start, @p actual the measured start-to-
     * completion time. Callers must skip retried transfers (a retry's
     * span covers watchdog slack, not DMA service time).
     */
    void observe(std::uint64_t bytes, sim::Duration predicted,
                 sim::Duration actual);

    /** Learned duration estimate for @p bytes; 0 while the bucket is
     *  cold (fewer than kWarmupSamples observations). */
    sim::Duration predict(std::uint64_t bytes) const;

    /** @name Test / diagnostic introspection. */
    ///@{
    struct BucketView {
        std::uint32_t samples = 0;
        double ewma_ns = 0;      ///< smoothed actual completion time
        double ewma_err_ns = 0;  ///< smoothed |actual - predicted|
    };
    BucketView bucket(std::uint64_t bytes) const;

    struct DecisionCounts {
        std::uint64_t polled = 0;
        std::uint64_t interrupt = 0;
        std::uint64_t moderated = 0;
        std::uint64_t cold_fallbacks = 0;  ///< static-threshold decisions
    };
    const DecisionCounts &decisions() const { return decisions_; }
    ///@}

  private:
    struct Bucket {
        std::uint32_t samples = 0;
        double ewma_ns = 0;
        double ewma_err_ns = 0;
    };

    static constexpr std::size_t kBuckets = 28;  ///< log2 sizes 0..27+

    static std::size_t bucket_index(std::uint64_t bytes);

    const sim::CostModel &cm_;
    std::uint64_t static_threshold_;
    double alpha_;
    /** Cost of the interrupt completion path the poll decision competes
     *  against (IRQ entry + kthread wakeup), in ns. */
    double irq_path_ns_;
    std::array<Bucket, kBuckets> buckets_{};
    DecisionCounts decisions_;
};

}  // namespace memif
