/**
 * @file
 * Managed-mode tests: heat-policy arithmetic in isolation (aging
 * decay, EWMA hysteresis, bucket geometry), then the scan kthread +
 * migration daemon end to end — promotion of hot buckets, demotion
 * once they cool, the per-epoch page budget, failure absorption under
 * injected fault bursts, and inertness with the lever off.
 *
 * The integration tests drive heat with one deterministic touch pass
 * over the managed region at t=0 (manage_region arms every PTE, so
 * only real touches read as accesses): the first scan epoch sees the
 * whole region hot and the daemon promotes it; with no further touches
 * the aging vector decays below the demote threshold a few epochs
 * later and the daemon moves everything back. One touch pass therefore
 * exercises the full promote -> cool -> demote -> quiesce cycle
 * without any schedule-sensitive racing.
 */
#include "memif/device.h"

#include <gtest/gtest.h>

#include <vector>

#include "dma/engine.h"
#include "memif/heat_policy.h"
#include "memif/user_api.h"
#include "os/kernel.h"
#include "os/process.h"
#include "sim/task.h"
#include "sim/types.h"

namespace memif::core {
namespace {

// ---------------------------------------------------------------------
// Heat-policy unit coverage: pure arithmetic, no simulator.
// ---------------------------------------------------------------------

TEST(HeatPolicy, AgingPromotesOnRecencyAndDecaysToDemote)
{
    HeatConfig hc;  // defaults: promote >= 0x60, demote < 0x10
    RegionHeat heat(hc, 16);
    ASSERT_EQ(heat.num_buckets(), 2u);

    // One fully-accessed epoch shifts 0x80 into the vector: hot.
    heat.fold(0, 8, 2, 8);
    EXPECT_EQ(heat.bucket(0).age, 0x80);
    EXPECT_EQ(heat.classify(0, /*resident_fast=*/false),
              HeatVerdict::kPromote);
    EXPECT_EQ(heat.classify(0, /*resident_fast=*/true), HeatVerdict::kStay);

    // Idle epochs halve the score; inside the hysteresis band the
    // bucket keeps its hot classification (0x40, 0x20, 0x10 >= 0x10).
    heat.fold(0, 0, 0, 8);
    EXPECT_EQ(heat.bucket(0).age, 0x40);
    EXPECT_EQ(heat.classify(0, false), HeatVerdict::kPromote);
    heat.fold(0, 0, 0, 8);
    heat.fold(0, 0, 0, 8);
    EXPECT_EQ(heat.bucket(0).age, 0x10);
    EXPECT_TRUE(heat.bucket(0).hot);

    // One more idle epoch drops below the demote threshold: cold.
    heat.fold(0, 0, 0, 8);
    EXPECT_EQ(heat.bucket(0).age, 0x08);
    EXPECT_EQ(heat.classify(0, /*resident_fast=*/true),
              HeatVerdict::kDemote);
    EXPECT_EQ(heat.classify(0, /*resident_fast=*/false),
              HeatVerdict::kStay);

    // The untouched second bucket never classified as anything but
    // cold, and epoch accounting tracked the first one's activity.
    EXPECT_FALSE(heat.bucket(1).hot);
    EXPECT_EQ(heat.bucket(0).accessed_epochs, 1u);
    EXPECT_EQ(heat.bucket(0).written_epochs, 1u);
}

TEST(HeatPolicy, EwmaHysteresisAbsorbsAFiftyPercentDutyCycle)
{
    HeatConfig hc;
    hc.policy = MigratePolicy::kEwma;  // alpha .4, enter .6, exit .2
    RegionHeat heat(hc, 8);
    ASSERT_EQ(heat.num_buckets(), 1u);

    // Alternate fully-accessed and idle epochs. The rate oscillates
    // between roughly 0.37 and 0.62: it crosses the enter band once,
    // then never falls to the exit band — exactly one hot flip, no
    // ping-pong.
    for (int e = 0; e < 24; ++e)
        heat.fold(0, (e % 2 == 0) ? 8 : 0, 0, 8);
    EXPECT_TRUE(heat.bucket(0).hot);
    EXPECT_EQ(heat.ping_pongs(), 0u);

    // A long genuinely-idle stretch does demote it.
    for (int e = 0; e < 8; ++e) heat.fold(0, 0, 0, 8);
    EXPECT_FALSE(heat.bucket(0).hot);
    EXPECT_LE(heat.bucket(0).rate, hc.ewma_cold_exit);
    EXPECT_EQ(heat.classify(0, /*resident_fast=*/true),
              HeatVerdict::kDemote);
}

TEST(HeatPolicy, BucketGeometryAndHistogram)
{
    HeatConfig hc;
    hc.bucket_pages = 8;
    RegionHeat heat(hc, 21);  // 2 full buckets + one short tail
    ASSERT_EQ(heat.num_buckets(), 3u);
    EXPECT_EQ(heat.pages_in(0), 8u);
    EXPECT_EQ(heat.pages_in(2), 5u);
    EXPECT_EQ(heat.first_page(2), 16u);
    EXPECT_EQ(heat.bucket_of(15), 1u);
    EXPECT_EQ(heat.bucket_of(16), 2u);

    heat.fold(0, 8, 0, 8);  // age 0x80: score 0.5, the middle octile
    const std::vector<std::uint64_t> h = heat.histogram();
    ASSERT_EQ(h.size(), 8u);
    std::uint64_t total = 0;
    for (const std::uint64_t n : h) total += n;
    EXPECT_EQ(total, heat.num_buckets());
    EXPECT_EQ(h.front(), 2u);  // the two untouched buckets
    EXPECT_EQ(h[4], 1u);       // the freshly hot one
    EXPECT_EQ(heat.ping_pongs(), 0u);  // initial flips are not flaps
}

// ---------------------------------------------------------------------
// Integration: scanner + daemon against a live device.
// ---------------------------------------------------------------------

struct Fixture {
    os::Kernel kernel;
    os::Process &proc;
    MemifDevice dev;
    MemifUser user;

    explicit Fixture(MemifConfig cfg)
        : proc(kernel.create_process()), dev(kernel, proc, cfg), user(dev)
    {
    }

    ~Fixture()
    {
        std::string why;
        EXPECT_TRUE(dev.check_quiesced(&why)) << "teardown: " << why;
    }

    void
    fill(vm::VAddr base, std::uint64_t bytes, std::uint8_t seed)
    {
        std::vector<std::uint8_t> buf(bytes);
        for (std::uint64_t i = 0; i < bytes; ++i)
            buf[i] = static_cast<std::uint8_t>(seed + i * 13);
        ASSERT_TRUE(proc.as().write(base, buf.data(), bytes));
    }

    bool
    check(vm::VAddr base, std::uint64_t bytes, std::uint8_t seed)
    {
        std::vector<std::uint8_t> buf(bytes);
        if (!proc.as().read(base, buf.data(), bytes)) return false;
        for (std::uint64_t i = 0; i < bytes; ++i)
            if (buf[i] != static_cast<std::uint8_t>(seed + i * 13))
                return false;
        return true;
    }

    /** Node the backing frame of page @p idx of @p base's vma lives on. */
    mem::NodeId
    node_of_page(vm::VAddr base, std::uint64_t idx)
    {
        const vm::Vma *vma = proc.as().find_vma(base);
        EXPECT_NE(vma, nullptr);
        return kernel.phys().node_of(vma->pte(idx).pfn);
    }
};

/** managed() tightened for tests: fast scan epochs, small buckets. */
MemifConfig
test_managed()
{
    MemifConfig c = MemifConfig::managed();
    c.heat_scan_interval = sim::microseconds(100);
    return c;
}

/** One read touch on every page of [base, base + pages) at t=0. */
sim::Task
touch_all(Fixture &f, vm::VAddr base, std::uint32_t pages)
{
    for (std::uint32_t p = 0; p < pages; ++p) {
        os::TouchOutcome t;
        co_await f.proc.touch(base + std::uint64_t{p} * 4096, false, &t);
    }
}

TEST(Managed, PromoteStormThenCoolDownDemotesAndQuiesces)
{
    Fixture f(test_managed());
    const std::uint32_t pages = 32;  // 4 buckets of 8
    const vm::VAddr base = f.proc.mmap(pages * 4096, vm::PageSize::k4K,
                                       f.kernel.slow_node());
    f.fill(base, pages * 4096, 17);
    ASSERT_TRUE(f.dev.manage_region(base));
    EXPECT_EQ(f.dev.managed_region_count(), 1u);

    // One touch pass, then silence: the first scan epoch marks every
    // bucket accessed (promote storm), the following idle epochs decay
    // them cold (demotions), then the scanner parks and the event
    // queue runs dry.
    f.kernel.spawn(touch_all(f, base, pages));
    f.kernel.run();

    const DeviceStats &ds = f.dev.stats();
    EXPECT_GE(ds.heat_scans, 6u);
    EXPECT_EQ(ds.promotions_issued, 4u);
    EXPECT_EQ(ds.promotions_completed, 4u);
    EXPECT_EQ(ds.demotions_issued, 4u);
    EXPECT_EQ(ds.demotions_completed, 4u);
    EXPECT_EQ(ds.daemon_movs_dropped, 0u);
    // Fully cooled: everything migrated back where it started, with
    // the contents intact across both round trips.
    for (std::uint32_t p = 0; p < pages; ++p)
        EXPECT_EQ(f.node_of_page(base, p), f.kernel.slow_node())
            << "page " << p;
    EXPECT_TRUE(f.check(base, pages * 4096, 17));
    EXPECT_GT(f.proc.as().stats().heat_samples, 0u);
    EXPECT_GT(f.proc.as().stats().heat_rearms, 0u);
}

TEST(Managed, EpochBudgetBoundsTheDaemonsRate)
{
    MemifConfig cfg = test_managed();
    cfg.migrate_pages_per_epoch = 8;  // one bucket per epoch
    Fixture f(cfg);
    const std::uint32_t pages = 32;
    const vm::VAddr base = f.proc.mmap(pages * 4096, vm::PageSize::k4K,
                                       f.kernel.slow_node());
    f.fill(base, pages * 4096, 23);
    ASSERT_TRUE(f.dev.manage_region(base));

    f.kernel.spawn(touch_all(f, base, pages));
    f.kernel.run();

    // All four buckets still promoted (and later demoted), but spread
    // over epochs: the budget ran out at least once per direction.
    const DeviceStats &ds = f.dev.stats();
    EXPECT_EQ(ds.promotions_completed, 4u);
    EXPECT_EQ(ds.demotions_completed, 4u);
    EXPECT_GE(ds.daemon_budget_exhausted, 2u);
    EXPECT_TRUE(f.check(base, pages * 4096, 23));
}

TEST(Managed, DaemonAbsorbsFaultBurstsWithoutPerturbingAppRequests)
{
    Fixture f(test_managed());
    const std::uint32_t pages = 32;
    const vm::VAddr base = f.proc.mmap(pages * 4096, vm::PageSize::k4K,
                                       f.kernel.slow_node());
    f.fill(base, pages * 4096, 41);
    const vm::VAddr src = f.proc.mmap(16 * 4096, vm::PageSize::k4K);
    const vm::VAddr dst = f.proc.mmap(16 * 4096, vm::PageSize::k4K,
                                      f.kernel.fast_node());
    f.fill(src, 16 * 4096, 7);
    ASSERT_TRUE(f.dev.manage_region(base));

    // Heavy allocation-failure burst: nearly every daemon promotion
    // dies at the fast-node allocation, plus DMA TC errors rattling
    // the recovery ladder under everything.
    sim::FaultInjector &fi = f.kernel.faults();
    fi.seed(0xC001D00Dull);
    fi.arm_probability(kFaultAllocFail, 0.9);
    fi.arm_probability(dma::kFaultTcError, 0.2);

    // A concurrent app replication must ride through untouched — the
    // daemon's failures are absorbed (drop + cooldown), never retried
    // or escalated on a path the app can feel.
    const std::uint32_t idx = f.user.alloc_request();
    ASSERT_NE(idx, kNoRequest);
    MovReq &req = f.user.request(idx);
    req.op = MovOp::kReplicate;
    req.src_base = src;
    req.dst_base = dst;
    req.num_pages = 16;
    f.kernel.spawn(touch_all(f, base, pages));
    f.kernel.spawn(f.user.submit(idx));
    f.kernel.run();

    EXPECT_EQ(f.user.request(idx).load_status(), MovStatus::kDone);
    EXPECT_TRUE(f.check(dst, 16 * 4096, 7));
    EXPECT_TRUE(f.check(base, pages * 4096, 41));
    const DeviceStats &ds = f.dev.stats();
    EXPECT_GE(ds.daemon_movs_dropped, 1u);
    // Dropped is dropped: issued = completed + dropped, nothing lost.
    EXPECT_EQ(ds.promotions_issued + ds.demotions_issued,
              ds.promotions_completed + ds.demotions_completed +
                  ds.daemon_movs_dropped);
}

TEST(Managed, AutoMigrateOffIsInert)
{
    Fixture f(MemifConfig::mmu_aware());
    const vm::VAddr base = f.proc.mmap(16 * 4096, vm::PageSize::k4K);
    f.fill(base, 16 * 4096, 5);

    // The lever is off: nothing to manage, no scanner, no daemon.
    EXPECT_FALSE(f.dev.manage_region(base));
    EXPECT_EQ(f.dev.managed_region_count(), 0u);

    const vm::VAddr dst = f.proc.mmap(16 * 4096, vm::PageSize::k4K,
                                      f.kernel.fast_node());
    const std::uint32_t idx = f.user.alloc_request();
    MovReq &req = f.user.request(idx);
    req.op = MovOp::kReplicate;
    req.src_base = base;
    req.dst_base = dst;
    req.num_pages = 16;
    f.kernel.spawn(f.user.submit(idx));
    f.kernel.run();

    EXPECT_EQ(f.user.request(idx).load_status(), MovStatus::kDone);
    const DeviceStats &ds = f.dev.stats();
    EXPECT_EQ(ds.heat_scans, 0u);
    EXPECT_EQ(ds.promotions_issued, 0u);
    EXPECT_EQ(ds.demotions_issued, 0u);
    EXPECT_EQ(f.proc.as().stats().heat_samples, 0u);
}

TEST(Managed, UnmanageStopsFutureScansOfTheRegion)
{
    Fixture f(test_managed());
    const vm::VAddr base = f.proc.mmap(16 * 4096, vm::PageSize::k4K,
                                       f.kernel.slow_node());
    f.fill(base, 16 * 4096, 66);
    ASSERT_TRUE(f.dev.manage_region(base));
    ASSERT_TRUE(f.dev.manage_region(base));  // idempotent
    EXPECT_EQ(f.dev.managed_region_count(), 1u);

    f.dev.unmanage_region(base);
    EXPECT_EQ(f.dev.managed_region_count(), 0u);

    // With nothing managed the scanner parks immediately; the run ends
    // with zero daemon activity.
    f.kernel.run();
    EXPECT_EQ(f.dev.stats().promotions_issued, 0u);
    EXPECT_EQ(f.dev.stats().demotions_issued, 0u);
}

}  // namespace
}  // namespace memif::core
