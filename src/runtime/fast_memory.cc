#include "runtime/fast_memory.h"

#include <algorithm>
#include <vector>

#include "sim/log.h"

namespace memif::runtime {

FastMemoryManager::FastMemoryManager(os::Kernel &kernel, os::Process &proc,
                                     std::uint64_t budget_bytes)
    : kernel_(kernel),
      proc_(proc),
      device_(kernel, proc),
      user_(device_),
      budget_(budget_bytes)
{
    MEMIF_ASSERT(budget_bytes > 0);
}

std::list<FastMemoryManager::Region>::iterator
FastMemoryManager::find_region(vm::VAddr va)
{
    return std::find_if(residents_.begin(), residents_.end(),
                        [va](const Region &r) { return r.va == va; });
}

bool
FastMemoryManager::is_resident(vm::VAddr va) const
{
    return std::any_of(residents_.begin(), residents_.end(),
                       [va](const Region &r) { return r.va == va; });
}

void
FastMemoryManager::touch_region(vm::VAddr va)
{
    auto it = find_region(va);
    if (it != residents_.end()) it->last_use = ++lru_clock_;
}

sim::Task
FastMemoryManager::migrate_and_wait(vm::VAddr va, std::uint64_t bytes,
                                    mem::NodeId node, bool *ok)
{
    *ok = false;
    const vm::Vma *vma = proc_.as().find_vma(va);
    if (!vma) co_return;
    const std::uint64_t pb = vm::page_bytes(vma->page_size());
    std::uint64_t pages = (bytes + pb - 1) / pb;

    // A mov_req carries at most one PaRAM's worth of pages; split.
    std::uint32_t outstanding = 0;
    vm::VAddr cursor = va;
    while (pages > 0) {
        const std::uint32_t chunk = static_cast<std::uint32_t>(std::min<std::uint64_t>(
            pages, dma::DescriptorRam::kEntries));
        const std::uint32_t idx = user_.alloc_request();
        MEMIF_ASSERT(idx != core::kNoRequest,
                     "fast-memory manager instance exhausted");
        core::MovReq &req = user_.request(idx);
        req.op = core::MovOp::kMigrate;
        req.src_base = cursor;
        req.num_pages = chunk;
        req.dst_node = node;
        co_await user_.submit(idx);
        ++outstanding;
        cursor += std::uint64_t{chunk} * pb;
        pages -= chunk;
    }

    bool all_ok = true;
    while (outstanding > 0) {
        const std::uint32_t done = user_.retrieve_completed();
        if (done == core::kNoRequest) {
            co_await user_.poll();
            continue;
        }
        if (!user_.request(done).succeeded()) all_ok = false;
        user_.free_request(done);
        --outstanding;
    }
    if (all_ok) stats_.bytes_migrated += bytes;
    *ok = all_ok;
}

sim::Task
FastMemoryManager::make_resident(vm::VAddr va, std::uint64_t bytes, bool *ok)
{
    ++stats_.residency_requests;
    if (ok) *ok = false;
    if (bytes == 0 || bytes > budget_) {
        ++stats_.failures;
        co_return;
    }

    auto it = find_region(va);
    if (it != residents_.end()) {
        it->last_use = ++lru_clock_;
        ++stats_.hits;
        if (ok) *ok = true;
        co_return;
    }

    // Evict LRU residents until the region fits the budget.
    while (resident_bytes_ + bytes > budget_ && !residents_.empty()) {
        auto victim = residents_.begin();
        for (auto r = residents_.begin(); r != residents_.end(); ++r)
            if (r->last_use < victim->last_use) victim = r;
        const Region evicted = *victim;
        residents_.erase(victim);
        resident_bytes_ -= evicted.bytes;
        ++stats_.evictions;
        bool evict_ok = false;
        co_await migrate_and_wait(evicted.va, evicted.bytes,
                                  kernel_.slow_node(), &evict_ok);
        if (!evict_ok)
            MEMIF_WARN("fast-memory eviction of 0x%llx failed",
                       static_cast<unsigned long long>(evicted.va));
    }

    bool admit_ok = false;
    co_await migrate_and_wait(va, bytes, kernel_.fast_node(), &admit_ok);
    if (!admit_ok) {
        ++stats_.failures;
        co_return;
    }
    residents_.push_back(Region{va, bytes, ++lru_clock_});
    resident_bytes_ += bytes;
    ++stats_.admissions;
    if (ok) *ok = true;
}

sim::Task
FastMemoryManager::evict(vm::VAddr va, bool *ok)
{
    if (ok) *ok = false;
    auto it = find_region(va);
    if (it == residents_.end()) co_return;
    const Region region = *it;
    residents_.erase(it);
    resident_bytes_ -= region.bytes;
    ++stats_.evictions;
    bool mig_ok = false;
    co_await migrate_and_wait(region.va, region.bytes, kernel_.slow_node(),
                              &mig_ok);
    if (ok) *ok = mig_ok;
}

}  // namespace memif::runtime
