/**
 * @file
 * Unit tests for the Kernel facade and Process basics.
 */
#include "os/kernel.h"

#include <gtest/gtest.h>

#include "os/process.h"
#include "sim/types.h"

namespace memif::os {
namespace {

TEST(Kernel, BuildsKeystoneMachine)
{
    Kernel k;
    EXPECT_EQ(k.phys().node_count(), 2u);
    EXPECT_TRUE(k.phys().node(k.fast_node()).is_fast());
    EXPECT_FALSE(k.phys().node(k.slow_node()).is_fast());
    EXPECT_EQ(k.cpu().num_cores(), 4u);
}

TEST(Kernel, CreateProcessAssignsPids)
{
    Kernel k;
    Process &a = k.create_process();
    Process &b = k.create_process();
    EXPECT_NE(a.pid(), b.pid());
    EXPECT_EQ(k.process_count(), 2u);
}

TEST(Kernel, SyscallCrossingChargesCost)
{
    Kernel k;
    auto coro = [&]() -> sim::Task { co_await k.syscall_crossing(); };
    sim::Task t = coro();
    k.run();
    EXPECT_EQ(k.eq().now(), k.costs().syscall_crossing);
    EXPECT_EQ(k.cpu().accounting().op(sim::Op::kSyscall),
              k.costs().syscall_crossing);
}

TEST(Kernel, SpawnKeepsTasksAliveUntilDone)
{
    Kernel k;
    int finished = 0;
    // The lambda outlives every spawned frame (closure is not copied
    // into coroutine frames; the index is a by-value parameter).
    auto coro = [&k, &finished](int i) -> sim::Task {
        co_await sim::Delay{k.eq(),
                            static_cast<sim::Duration>(100 * (i + 1))};
        ++finished;
    };
    for (int i = 0; i < 5; ++i) k.spawn(coro(i));
    k.run();
    EXPECT_EQ(finished, 5);
}

TEST(Kernel, SpawnRethrowsSynchronousFailures)
{
    Kernel k;
    auto bad = []() -> sim::Task {
        throw std::runtime_error("sync failure");
        co_return;
    };
    EXPECT_THROW(k.spawn(bad()), std::runtime_error);
}

TEST(Process, MmapDefaultsToSlowNode)
{
    Kernel k;
    Process &p = k.create_process();
    const vm::VAddr base = p.mmap(4096, vm::PageSize::k4K);
    ASSERT_NE(base, 0u);
    const vm::Vma *vma = p.as().find_vma(base);
    EXPECT_EQ(k.phys().node_of(vma->pte(0).pfn), k.slow_node());
}

TEST(Process, StreamComputeIsBandwidthBound)
{
    Kernel k;
    Process &p = k.create_process();
    const vm::VAddr slow_buf = p.mmap(1 << 20, vm::PageSize::k4K);
    const vm::VAddr fast_buf =
        p.mmap(1 << 20, vm::PageSize::k4K, k.fast_node());

    sim::Duration slow_d = 0, fast_d = 0;
    auto coro = [&]() -> sim::Task {
        co_await p.stream_compute(slow_buf, 1 << 20, 1e12, &slow_d);
        co_await p.stream_compute(fast_buf, 1 << 20, 1e12, &fast_d);
    };
    sim::Task t = coro();
    k.run();
    // 6.2 GB/s vs 24 GB/s: the fast buffer streams ~3.9x faster.
    EXPECT_GT(slow_d, 3 * fast_d);
    EXPECT_LT(slow_d, 5 * fast_d);
}

}  // namespace
}  // namespace memif::os
