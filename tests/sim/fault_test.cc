/**
 * @file
 * Unit tests for the fault injector: arming semantics, nth-occurrence
 * and probability triggers, determinism, and the unarmed fast path.
 */
#include "sim/fault.h"

#include <gtest/gtest.h>

#include <vector>

namespace memif::sim {
namespace {

TEST(FaultInjector, DisabledByDefaultAndNeverFires)
{
    FaultInjector inj;
    EXPECT_FALSE(inj.enabled());
    for (int i = 0; i < 100; ++i) EXPECT_FALSE(inj.should_fire("dma.tc_error"));
    // Unarmed sites are not even counted.
    EXPECT_EQ(inj.occurrences("dma.tc_error"), 0u);
    EXPECT_EQ(inj.total_fired(), 0u);
}

TEST(FaultInjector, NthOccurrenceFiresExactlyOnce)
{
    FaultInjector inj;
    inj.arm_nth("dma.tc_error", 3);
    EXPECT_TRUE(inj.enabled());
    std::vector<bool> fired;
    for (int i = 0; i < 6; ++i) fired.push_back(inj.should_fire("dma.tc_error"));
    EXPECT_EQ(fired, (std::vector<bool>{false, false, true, false, false, false}));
    EXPECT_EQ(inj.occurrences("dma.tc_error"), 6u);
    EXPECT_EQ(inj.fired("dma.tc_error"), 1u);
    EXPECT_EQ(inj.total_fired(), 1u);
}

TEST(FaultInjector, NthWithCountFiresConsecutively)
{
    FaultInjector inj;
    inj.arm_nth("dma.stuck", 2, 3);
    std::vector<bool> fired;
    for (int i = 0; i < 6; ++i) fired.push_back(inj.should_fire("dma.stuck"));
    EXPECT_EQ(fired, (std::vector<bool>{false, true, true, true, false, false}));
}

TEST(FaultInjector, FirstOccurrenceTrigger)
{
    FaultInjector inj;
    inj.arm_nth("memif.alloc_fail", 1);
    EXPECT_TRUE(inj.should_fire("memif.alloc_fail"));
    EXPECT_FALSE(inj.should_fire("memif.alloc_fail"));
}

TEST(FaultInjector, SitesAreIndependent)
{
    FaultInjector inj;
    inj.arm_nth("a", 1);
    inj.arm_nth("b", 2);
    EXPECT_TRUE(inj.should_fire("a"));
    EXPECT_FALSE(inj.should_fire("b"));
    EXPECT_TRUE(inj.should_fire("b"));
    EXPECT_FALSE(inj.should_fire("c"));  // never armed
    EXPECT_EQ(inj.occurrences("c"), 0u);
}

TEST(FaultInjector, CountingStartsAtArmTime)
{
    FaultInjector inj;
    inj.arm_nth("site", 2);
    EXPECT_FALSE(inj.should_fire("site"));
    EXPECT_TRUE(inj.should_fire("site"));
    // Re-arming resets the occurrence counter.
    inj.arm_nth("site", 2);
    EXPECT_EQ(inj.occurrences("site"), 0u);
    EXPECT_FALSE(inj.should_fire("site"));
    EXPECT_TRUE(inj.should_fire("site"));
}

TEST(FaultInjector, DisarmStopsFiring)
{
    FaultInjector inj;
    inj.arm_probability("site", 1.0);
    EXPECT_TRUE(inj.should_fire("site"));
    inj.disarm("site");
    EXPECT_FALSE(inj.enabled());
    EXPECT_FALSE(inj.should_fire("site"));
}

TEST(FaultInjector, ResetForgetsEverything)
{
    FaultInjector inj;
    inj.arm_nth("x", 1);
    EXPECT_TRUE(inj.should_fire("x"));
    inj.reset();
    EXPECT_FALSE(inj.enabled());
    EXPECT_EQ(inj.occurrences("x"), 0u);
    EXPECT_EQ(inj.fired("x"), 0u);
    EXPECT_EQ(inj.total_fired(), 0u);
}

TEST(FaultInjector, ProbabilityZeroNeverFires)
{
    FaultInjector inj;
    inj.seed(7);
    inj.arm_probability("site", 0.0);
    for (int i = 0; i < 1000; ++i) EXPECT_FALSE(inj.should_fire("site"));
}

TEST(FaultInjector, ProbabilityOneAlwaysFires)
{
    FaultInjector inj;
    inj.seed(7);
    inj.arm_probability("site", 1.0);
    for (int i = 0; i < 1000; ++i) EXPECT_TRUE(inj.should_fire("site"));
}

TEST(FaultInjector, ProbabilityRateIsRoughlyHonoured)
{
    FaultInjector inj;
    inj.seed(42);
    inj.arm_probability("site", 0.25);
    int hits = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) hits += inj.should_fire("site") ? 1 : 0;
    const double rate = static_cast<double>(hits) / n;
    EXPECT_NEAR(rate, 0.25, 0.02);
}

TEST(FaultInjector, SameSeedSameDecisions)
{
    auto draw = [](std::uint64_t seed) {
        FaultInjector inj;
        inj.seed(seed);
        inj.arm_probability("site", 0.3);
        std::vector<bool> v;
        for (int i = 0; i < 256; ++i) v.push_back(inj.should_fire("site"));
        return v;
    };
    EXPECT_EQ(draw(123), draw(123));
    EXPECT_NE(draw(123), draw(124));
}

TEST(FaultInjector, BurstFiresAsASquareWave)
{
    FaultInjector inj;
    // Duty cycle 2/5 starting at the very first occurrence.
    inj.arm_burst("site", 5, 2);
    EXPECT_TRUE(inj.enabled());
    std::vector<bool> fired;
    for (int i = 0; i < 12; ++i) fired.push_back(inj.should_fire("site"));
    EXPECT_EQ(fired, (std::vector<bool>{true, true, false, false, false,
                                        true, true, false, false, false,
                                        true, true}));
    EXPECT_EQ(inj.fired("site"), 6u);
}

TEST(FaultInjector, BurstStartDelaysTheFirstBurst)
{
    FaultInjector inj;
    // Quiet warm-up: nothing fires before occurrence 4.
    inj.arm_burst("site", 4, 1, 4);
    std::vector<bool> fired;
    for (int i = 0; i < 10; ++i) fired.push_back(inj.should_fire("site"));
    EXPECT_EQ(fired, (std::vector<bool>{false, false, false, true, false,
                                        false, false, true, false, false}));
}

TEST(FaultInjector, BurstIsDeterministicAcrossReplaysAndSeeds)
{
    // No probability stream is consumed: the pattern is a pure function
    // of the occurrence counter, so even different seeds replay it
    // bit-identically (the overload scenarios depend on this).
    auto draw = [](std::uint64_t seed) {
        FaultInjector inj;
        inj.seed(seed);
        inj.arm_burst("site", 7, 3, 2);
        std::vector<bool> v;
        for (int i = 0; i < 128; ++i) v.push_back(inj.should_fire("site"));
        return v;
    };
    EXPECT_EQ(draw(1), draw(1));
    EXPECT_EQ(draw(1), draw(999));
}

TEST(FaultInjector, BurstComposesWithProbabilityWithoutStreamShift)
{
    // A burst trigger must not consume random draws, so arming it on
    // top of a probability does not shift later probabilistic picks.
    auto draw = [](bool with_burst) {
        FaultInjector inj;
        inj.seed(31);
        FaultSpec spec;
        spec.probability = 0.2;
        if (with_burst) {
            spec.burst_period = 16;
            spec.burst_len = 2;
        }
        inj.arm("site", spec);
        std::vector<bool> v;
        for (int i = 0; i < 64; ++i) v.push_back(inj.should_fire("site"));
        return v;
    };
    std::vector<bool> plain = draw(false);
    std::vector<bool> burst = draw(true);
    ASSERT_EQ(plain.size(), burst.size());
    for (std::size_t i = 0; i < plain.size(); ++i) {
        if (i % 16 < 2)
            EXPECT_TRUE(burst[i]) << "occurrence " << i;
        else
            EXPECT_EQ(plain[i], burst[i]) << "occurrence " << i;
    }
}

TEST(FaultInjector, CombinedNthAndProbabilityKeepsStreamStable)
{
    // The probability draw is taken for every occurrence even when the
    // nth trigger already decided, so adding an nth trigger does not
    // shift the random stream of later occurrences.
    auto draw = [](bool with_nth) {
        FaultInjector inj;
        inj.seed(99);
        inj.arm("site", FaultSpec{with_nth ? std::uint64_t{5} : 0, 1, 0.2});
        std::vector<bool> v;
        for (int i = 0; i < 64; ++i) v.push_back(inj.should_fire("site"));
        return v;
    };
    std::vector<bool> plain = draw(false);
    std::vector<bool> nth = draw(true);
    ASSERT_EQ(plain.size(), nth.size());
    for (std::size_t i = 0; i < plain.size(); ++i) {
        if (i == 4)
            EXPECT_TRUE(nth[i]);  // the forced occurrence
        else
            EXPECT_EQ(plain[i], nth[i]) << "occurrence " << i;
    }
}

}  // namespace
}  // namespace memif::sim
