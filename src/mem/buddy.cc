#include "mem/buddy.h"

#include "sim/log.h"

namespace memif::mem {

BuddyAllocator::BuddyAllocator(std::uint64_t num_frames)
    : num_frames_(num_frames),
      free_lists_(kMaxOrder + 1),
      allocated_order_(num_frames, 0)
{
    // Seed the free lists with the largest naturally aligned blocks that
    // fit, walking the range front to back (handles non-power-of-two
    // node sizes).
    std::uint64_t frame = 0;
    while (frame < num_frames_) {
        unsigned order = kMaxOrder;
        while (order > 0 &&
               ((frame & ((std::uint64_t{1} << order) - 1)) != 0 ||
                frame + (std::uint64_t{1} << order) > num_frames_)) {
            --order;
        }
        free_lists_[order].insert(frame);
        free_frames_ += std::uint64_t{1} << order;
        frame += std::uint64_t{1} << order;
    }
    MEMIF_ASSERT(free_frames_ == num_frames_);
}

std::uint64_t
BuddyAllocator::allocate(unsigned order)
{
    MEMIF_ASSERT(order <= kMaxOrder, "order %u too large", order);
    // Find the smallest order with a free block.
    unsigned o = order;
    while (o <= kMaxOrder && free_lists_[o].empty()) ++o;
    if (o > kMaxOrder) return kInvalidFrame;

    std::uint64_t head = *free_lists_[o].begin();
    free_lists_[o].erase(free_lists_[o].begin());

    // Split down to the requested order, returning the upper halves.
    while (o > order) {
        --o;
        free_lists_[o].insert(head + (std::uint64_t{1} << o));
    }

    allocated_order_[head] = static_cast<std::uint8_t>(order + 1);
    free_frames_ -= std::uint64_t{1} << order;
    return head;
}

void
BuddyAllocator::free(std::uint64_t head, unsigned order)
{
    MEMIF_ASSERT(head < num_frames_, "frame %llu out of range",
                 static_cast<unsigned long long>(head));
    MEMIF_ASSERT(order <= kMaxOrder);
    if (allocated_order_[head] == 0)
        MEMIF_PANIC("double free or bad head frame %llu",
                    static_cast<unsigned long long>(head));
    if (allocated_order_[head] != order + 1)
        MEMIF_PANIC("free order %u mismatches allocation order %u", order,
                    allocated_order_[head] - 1);
    allocated_order_[head] = 0;
    free_frames_ += std::uint64_t{1} << order;

    // Coalesce with the buddy while possible.
    std::uint64_t block = head;
    unsigned o = order;
    while (o < kMaxOrder) {
        const std::uint64_t buddy = buddy_of(block, o);
        auto it = free_lists_[o].find(buddy);
        if (it == free_lists_[o].end()) break;
        // A same-order free buddy exists: merge.
        free_lists_[o].erase(it);
        block = block < buddy ? block : buddy;
        ++o;
    }
    free_lists_[o].insert(block);
}

bool
BuddyAllocator::can_allocate(unsigned order) const
{
    for (unsigned o = order; o <= kMaxOrder; ++o)
        if (!free_lists_[o].empty()) return true;
    return false;
}

}  // namespace memif::mem
