/**
 * @file
 * Unit tests for address spaces: mmap/munmap, translation, functional
 * read/write across pages, and the access semantics (young clearing,
 * migration blocking) underpinning §5.2.
 */
#include "vm/addr_space.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "mem/phys.h"
#include "vm/pte.h"
#include "vm/vma.h"

namespace memif::vm {
namespace {

struct Fixture {
    mem::PhysicalMemory pm;
    mem::NodeId slow, fast;
    Fixture()
    {
        auto ids = mem::KeystoneMemory::build(pm, 32ull << 20);
        slow = ids.first;
        fast = ids.second;
    }
};

TEST(AddressSpace, MmapPopulatesPtesAndRmap)
{
    Fixture f;
    AddressSpace as(f.pm);
    const VAddr base = as.mmap(8 * 4096, PageSize::k4K, f.slow);
    ASSERT_NE(base, 0u);
    Vma *vma = as.find_vma(base);
    ASSERT_NE(vma, nullptr);
    EXPECT_EQ(vma->num_pages(), 8u);
    for (std::uint64_t i = 0; i < 8; ++i) {
        const Pte pte = vma->pte(i);
        EXPECT_TRUE(pte.present);
        EXPECT_FALSE(pte.young);
        EXPECT_EQ(f.pm.node_of(pte.pfn), f.slow);
        const mem::PageFrame &frame = f.pm.frame(pte.pfn);
        ASSERT_EQ(frame.mapcount(), 1u);
        EXPECT_EQ(frame.rmaps[0].owner, &as);
        EXPECT_EQ(frame.rmaps[0].vaddr, vma->page_vaddr(i));
    }
}

TEST(AddressSpace, MmapAlignsLargePages)
{
    Fixture f;
    AddressSpace as(f.pm);
    const VAddr a = as.mmap(100, PageSize::k4K, f.slow);
    const VAddr b = as.mmap(3 << 20, PageSize::k2M, f.slow);
    EXPECT_EQ(b % (2ull << 20), 0u);
    Vma *vma = as.find_vma(b);
    ASSERT_NE(vma, nullptr);
    EXPECT_EQ(vma->num_pages(), 2u);  // 3 MB rounds up to two 2 MB pages
    EXPECT_NE(a, b);
}

TEST(AddressSpace, MunmapReturnsFramesToBuddy)
{
    Fixture f;
    AddressSpace as(f.pm);
    const std::uint64_t before = f.pm.node(f.fast).free_frames();
    const VAddr base = as.mmap(64 * 4096, PageSize::k4K, f.fast);
    ASSERT_NE(base, 0u);
    EXPECT_EQ(f.pm.node(f.fast).free_frames(), before - 64);
    as.munmap(base);
    EXPECT_EQ(f.pm.node(f.fast).free_frames(), before);
    EXPECT_EQ(as.find_vma(base), nullptr);
}

TEST(AddressSpace, MmapFailsGracefullyWhenNodeExhausted)
{
    Fixture f;
    AddressSpace as(f.pm);
    // The 6 MB fast node cannot back 8 MB.
    const VAddr base = as.mmap(8ull << 20, PageSize::k4K, f.fast);
    EXPECT_EQ(base, 0u);
    // And the failed mapping must not leak frames.
    const std::uint64_t frames = f.pm.node(f.fast).free_frames();
    EXPECT_EQ(frames, (6ull << 20) / 4096);
}

TEST(AddressSpace, ReadWriteRoundTripAcrossPages)
{
    Fixture f;
    AddressSpace as(f.pm);
    const VAddr base = as.mmap(4 * 4096, PageSize::k4K, f.slow);
    std::vector<std::uint8_t> out(3 * 4096 + 123);
    for (std::size_t i = 0; i < out.size(); ++i)
        out[i] = static_cast<std::uint8_t>(i * 13 + 1);
    // Start mid-page so the copy straddles boundaries.
    ASSERT_TRUE(as.write(base + 100, out.data(), out.size()));
    std::vector<std::uint8_t> in(out.size());
    ASSERT_TRUE(as.read(base + 100, in.data(), in.size()));
    EXPECT_EQ(in, out);
}

TEST(AddressSpace, TranslateReturnsStablePointers)
{
    Fixture f;
    AddressSpace as(f.pm);
    const VAddr base = as.mmap(4096, PageSize::k4K, f.slow);
    std::byte *p = as.translate(base + 5);
    ASSERT_NE(p, nullptr);
    *p = std::byte{0x5A};
    std::uint8_t v = 0;
    as.read(base + 5, &v, 1);
    EXPECT_EQ(v, 0x5A);
    EXPECT_EQ(as.translate(base - 1), nullptr);
}

TEST(AddressSpace, TouchClearsYoungExactlyOnce)
{
    Fixture f;
    AddressSpace as(f.pm);
    const VAddr base = as.mmap(4096, PageSize::k4K, f.slow);
    Vma *vma = as.find_vma(base);
    // Install a semi-final PTE (young set), as the memif Remap does.
    Pte pte = vma->pte(0);
    pte.young = true;
    vma->pte_slot(0).store(pte.pack(), std::memory_order_release);

    EXPECT_EQ(as.touch(base, false), AccessResult::kClearedYoung);
    EXPECT_EQ(as.stats().young_clears, 1u);
    EXPECT_FALSE(vma->pte(0).young);
    EXPECT_EQ(as.touch(base, false), AccessResult::kOk);
    EXPECT_EQ(as.stats().young_clears, 1u);
}

TEST(AddressSpace, TouchBlocksOnMigrationPte)
{
    Fixture f;
    AddressSpace as(f.pm);
    const VAddr base = as.mmap(4096, PageSize::k4K, f.slow);
    Vma *vma = as.find_vma(base);
    Pte pte = vma->pte(0);
    pte.migration = true;
    vma->pte_slot(0).store(pte.pack(), std::memory_order_release);

    EXPECT_EQ(as.touch(base, true), AccessResult::kBlockedOnMigration);
    EXPECT_EQ(as.stats().migration_blocks, 1u);

    pte.migration = false;
    vma->pte_slot(0).store(pte.pack(), std::memory_order_release);
    EXPECT_EQ(as.touch(base, true), AccessResult::kOk);
}

TEST(AddressSpace, TouchMarksDirtyOnWrite)
{
    Fixture f;
    AddressSpace as(f.pm);
    const VAddr base = as.mmap(4096, PageSize::k4K, f.slow);
    Vma *vma = as.find_vma(base);
    EXPECT_FALSE(vma->pte(0).dirty);
    as.touch(base, false);
    EXPECT_FALSE(vma->pte(0).dirty);
    as.touch(base, true);
    EXPECT_TRUE(vma->pte(0).dirty);
}

TEST(AddressSpace, TouchUnmappedIsHardFault)
{
    Fixture f;
    AddressSpace as(f.pm);
    EXPECT_EQ(as.touch(0xDEAD000, false), AccessResult::kNotPresent);
    EXPECT_EQ(as.stats().hard_faults, 1u);
}

TEST(AddressSpace, DestructorReleasesEverything)
{
    Fixture f;
    const std::uint64_t before = f.pm.node(f.slow).free_frames();
    {
        AddressSpace as(f.pm);
        as.mmap(1 << 20, PageSize::k4K, f.slow);
        as.mmap(2 << 20, PageSize::k2M, f.slow);
        as.mmap(1 << 20, PageSize::k64K, f.slow);
    }
    EXPECT_EQ(f.pm.node(f.slow).free_frames(), before);
}

TEST(Vma, GeometryHelpers)
{
    EXPECT_EQ(page_bytes(PageSize::k4K), 4096u);
    EXPECT_EQ(page_bytes(PageSize::k64K), 65536u);
    EXPECT_EQ(page_bytes(PageSize::k2M), 2u << 20);
    EXPECT_EQ(page_order(PageSize::k4K), 0u);
    EXPECT_EQ(page_order(PageSize::k64K), 4u);
    EXPECT_EQ(page_order(PageSize::k2M), 9u);
    EXPECT_EQ(frames_per_page(PageSize::k2M), 512u);
}

TEST(Pte, PackUnpackRoundTrip)
{
    Pte p;
    p.pfn = 0x12345;
    p.present = true;
    p.writable = true;
    p.young = true;
    p.dirty = false;
    p.migration = true;
    const Pte q = Pte::unpack(p.pack());
    EXPECT_EQ(q, p);
    EXPECT_EQ(q.pfn, 0x12345u);
    EXPECT_TRUE(q.young);
    EXPECT_TRUE(q.migration);
    EXPECT_FALSE(q.dirty);
}

}  // namespace
}  // namespace memif::vm
