/**
 * @file
 * Unit tests for SimEvent, WaitQueue and SimSemaphore.
 */
#include "sim/sync.h"

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.h"
#include "sim/task.h"

namespace memif::sim {
namespace {

TEST(SimEvent, WaitBlocksUntilSet)
{
    EventQueue eq;
    SimEvent ev(eq);
    std::vector<SimTime> woke;
    auto waiter = [&]() -> Task {
        co_await ev.wait();
        woke.push_back(eq.now());
    };
    Task t = waiter();
    eq.schedule_at(42, [&] { ev.set(); });
    eq.run();
    ASSERT_EQ(woke.size(), 1u);
    EXPECT_EQ(woke[0], 42u);
}

TEST(SimEvent, WaitOnSetEventIsImmediate)
{
    EventQueue eq;
    SimEvent ev(eq);
    ev.set();
    bool done = false;
    auto waiter = [&]() -> Task {
        co_await ev.wait();
        done = true;
    };
    Task t = waiter();
    EXPECT_TRUE(done);
}

TEST(SimEvent, SetWakesAllWaiters)
{
    EventQueue eq;
    SimEvent ev(eq);
    int woke = 0;
    auto waiter = [&]() -> Task {
        co_await ev.wait();
        ++woke;
    };
    std::vector<Task> ts;
    for (int i = 0; i < 5; ++i) ts.push_back(waiter());
    EXPECT_EQ(ev.waiter_count(), 5u);
    ev.set();
    eq.run();
    EXPECT_EQ(woke, 5);
}

TEST(SimEvent, ResetRearms)
{
    EventQueue eq;
    SimEvent ev(eq);
    int wakeups = 0;
    auto waiter = [&]() -> Task {
        co_await ev.wait();
        ++wakeups;
        ev.reset();
        co_await ev.wait();
        ++wakeups;
    };
    Task t = waiter();
    eq.schedule_at(10, [&] { ev.set(); });
    eq.schedule_at(20, [&] { ev.set(); });
    eq.run();
    EXPECT_EQ(wakeups, 2);
}

TEST(WaitQueue, NotifyOneWakesFifo)
{
    EventQueue eq;
    WaitQueue wq(eq);
    std::vector<int> order;
    auto waiter = [&](int id) -> Task {
        co_await wq.wait();
        order.push_back(id);
    };
    Task a = waiter(1);
    Task b = waiter(2);
    EXPECT_TRUE(wq.notify_one());
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1}));
    EXPECT_TRUE(wq.notify_one());
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
    EXPECT_FALSE(wq.notify_one());
}

TEST(WaitQueue, NotifyAllWakesEveryone)
{
    EventQueue eq;
    WaitQueue wq(eq);
    int woke = 0;
    auto waiter = [&]() -> Task {
        co_await wq.wait();
        ++woke;
    };
    std::vector<Task> ts;
    for (int i = 0; i < 7; ++i) ts.push_back(waiter());
    EXPECT_EQ(wq.notify_all(), 7u);
    eq.run();
    EXPECT_EQ(woke, 7);
}

TEST(WaitQueue, NotifySkipsDeadWaiters)
{
    EventQueue eq;
    WaitQueue wq(eq);
    bool second_woke = false;
    auto dead = [&]() -> Task { co_await wq.wait(); };
    auto live = [&]() -> Task {
        co_await wq.wait();
        second_woke = true;
    };
    {
        Task d = dead();
        Task l = live();
        EXPECT_EQ(wq.waiter_count(), 2u);
        // d destroyed at scope end while asleep.
        // (note: l also dies; re-create below)
    }
    // Both tasks above died; notify should wake nobody and not crash.
    EXPECT_FALSE(wq.notify_one());
    Task l2 = live();
    EXPECT_TRUE(wq.notify_one());
    eq.run();
    EXPECT_TRUE(second_woke);
}

TEST(SimSemaphore, AcquireBlocksAtZero)
{
    EventQueue eq;
    SimSemaphore sem(eq, 1);
    std::vector<int> order;
    auto user = [&](int id, Duration hold) -> Task {
        co_await sem.acquire();
        order.push_back(id);
        co_await Delay{eq, hold};
        sem.release();
    };
    Task a = user(1, 100);
    Task b = user(2, 100);
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
    EXPECT_EQ(sem.available(), 1u);
}

TEST(WaitAny, ReturnsOnTheFirstEvent)
{
    EventQueue eq;
    SimEvent a(eq), b(eq), c(eq);
    std::size_t which = 99;
    bool done = false;
    std::vector<SimEvent *> set{&a, &b, &c};
    auto waiter = [&]() -> Task {
        co_await wait_any(eq, set, &which);
        done = true;
    };
    Task t = waiter();
    eq.schedule_at(50, [&] { b.set(); });
    eq.schedule_at(500, [&] { a.set(); });
    eq.run_until(100);
    EXPECT_TRUE(done);
    EXPECT_EQ(which, 1u);
    // The later event may still fire; nothing dangles.
    eq.run();
}

TEST(WaitAny, AlreadySetEventReturnsImmediately)
{
    EventQueue eq;
    SimEvent a(eq), b(eq);
    b.set();
    std::size_t which = 99;
    bool done = false;
    std::vector<SimEvent *> set{&a, &b};
    auto waiter = [&]() -> Task {
        co_await wait_any(eq, set, &which);
        done = true;
    };
    Task t = waiter();
    eq.run();
    EXPECT_TRUE(done);
    EXPECT_EQ(which, 1u);
}

TEST(WaitAny, LosingEventsDropTheirWaitersSafely)
{
    EventQueue eq;
    SimEvent a(eq), b(eq);
    std::vector<SimEvent *> set{&a, &b};
    auto waiter = [&]() -> Task {
        co_await wait_any(eq, set, nullptr);
    };
    Task t = waiter();
    a.set();
    eq.run();
    EXPECT_TRUE(t.done());
    // The losing event may still hold a (disarmed) stale waiter entry;
    // signalling it later must resume nothing and drain the entry.
    b.set();
    eq.run();
    EXPECT_EQ(b.waiter_count(), 0u);
}

}  // namespace
}  // namespace memif::sim
