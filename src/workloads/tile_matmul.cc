#include "workloads/tile_matmul.h"

#include <cstring>
#include <unordered_map>
#include <vector>

#include "memif/memif.h"
#include "os/kernel.h"
#include "os/process.h"
#include "sim/log.h"
#include "sim/random.h"
#include "vm/addr_space.h"

namespace memif::workloads {

namespace {

/** Modelled FMA rate of the compute loops: 4 cores x 2 flops/ns. */
constexpr double kFlopsPerNs = 8.0;

/** FNV-1a fold of @p n raw bytes into @p h. */
std::uint64_t
fnv1a(std::uint64_t h, const void *p, std::size_t n)
{
    const unsigned char *b = static_cast<const unsigned char *>(p);
    for (std::size_t i = 0; i < n; ++i) {
        h ^= b[i];
        h *= 1099511628211ull;
    }
    return h;
}

/**
 * Outstanding-staging bookkeeping for the two double-buffer pair
 * slots. A pair slot covers both the A and the B tile of one kk step;
 * its DMA span runs from the first submit to the completion that
 * drains its last request.
 */
struct StageCtx {
    int memfd = -1;
    std::unordered_map<core::mov_req *, int> owner;  ///< req -> slot
    unsigned pending[2] = {0, 0};
    sim::SimTime t_issue[2] = {0, 0};
    sim::SimTime t_done[2] = {0, 0};
    std::uint64_t requests = 0;
};

/** Retrieve one completion (sleeping if none), credit its slot. */
sim::Task
reap_one(os::Kernel &kernel, StageCtx &c)
{
    core::mov_req *done = nullptr;
    while ((done = core::RetrieveCompleted(c.memfd)) == nullptr)
        co_await core::Poll(c.memfd);
    MEMIF_ASSERT(done->succeeded(), "tile staging request failed");
    const auto it = c.owner.find(done);
    MEMIF_ASSERT(it != c.owner.end(), "orphan staging completion");
    const int slot = it->second;
    c.owner.erase(it);
    core::FreeRequest(c.memfd, done);
    if (--c.pending[slot] == 0) c.t_done[slot] = kernel.eq().now();
}

/**
 * Issue the staging of one T x T tile into @p dst. kStrided sends one
 * pitched request; kPerRowFlat sends `rows` rows==1 requests, reaping
 * completions whenever the request free list runs dry.
 */
sim::Task
stage_tile(os::Kernel &kernel, StageCtx &c, int slot, vm::VAddr dst,
           vm::VAddr src, std::uint32_t row_bytes, std::uint32_t rows,
           std::uint64_t src_pitch, bool per_row)
{
    if (!per_row) {
        int rc = 0;
        core::mov_req *req = nullptr;
        co_await core::memif_mov_strided(c.memfd, dst, src, row_bytes,
                                         rows, src_pitch, row_bytes,
                                         &rc, &req);
        MEMIF_ASSERT(rc == core::kOk && req != nullptr,
                     "strided tile staging rejected (%d)", rc);
        c.owner[req] = slot;
        ++c.pending[slot];
        ++c.requests;
        co_return;
    }
    for (std::uint32_t r = 0; r < rows; ++r) {
        int rc = 0;
        core::mov_req *req = nullptr;
        for (;;) {
            co_await core::memif_mov_strided(
                c.memfd, dst + std::uint64_t{r} * row_bytes,
                src + std::uint64_t{r} * src_pitch, row_bytes, 1,
                row_bytes, row_bytes, &rc, &req);
            if (rc == core::kOk) break;
            // Free list exhausted by the outstanding rows: reap one
            // completion and retry this row.
            MEMIF_ASSERT(rc == core::kErrNoSpace && req == nullptr,
                         "per-row tile staging rejected (%d)", rc);
            co_await reap_one(kernel, c);
        }
        c.owner[req] = slot;
        ++c.pending[slot];
        ++c.requests;
    }
}

/** Drain slot @p slot's outstanding staging requests. */
sim::Task
wait_slot(os::Kernel &kernel, StageCtx &c, int slot)
{
    while (c.pending[slot] > 0) co_await reap_one(kernel, c);
}

}  // namespace

double
TileMatmulResult::overlap_ratio() const
{
    if (dma_total == 0) return 0.0;
    const double hidden =
        static_cast<double>(compute_total) +
        static_cast<double>(dma_total) - static_cast<double>(elapsed);
    const double r = hidden / static_cast<double>(dma_total);
    return r < 0.0 ? 0.0 : (r > 1.0 ? 1.0 : r);
}

double
TileMatmulResult::staging_mb_per_sec() const
{
    if (elapsed == 0) return 0.0;
    return static_cast<double>(bytes_staged) /
           (1e6 * sim::to_sec(elapsed));
}

sim::Task
run_tile_matmul(os::Kernel &kernel, os::Process &proc, int memfd,
                const TileMatmulConfig &cfg, TileMatmulResult *out)
{
    const std::uint32_t T = cfg.tile;
    MEMIF_ASSERT(T > 0 && cfg.m % T == 0 && cfg.n % T == 0 &&
                     cfg.k % T == 0,
                 "tile must divide every matrix dimension");
    vm::AddressSpace &as = proc.as();
    const std::uint64_t row_bytes = std::uint64_t{T} * sizeof(float);
    const std::uint64_t tile_bytes = row_bytes * T;
    const auto page_round = [](std::uint64_t b) {
        return (b + 4095) & ~std::uint64_t{4095};
    };

    // A/B/C row-major floats in slow DDR; two (A, B) tile-buffer pairs
    // packed dense in fast SRAM for the double buffer.
    const vm::VAddr a = proc.mmap(
        page_round(std::uint64_t{cfg.m} * cfg.k * 4), vm::PageSize::k4K);
    const vm::VAddr b = proc.mmap(
        page_round(std::uint64_t{cfg.k} * cfg.n * 4), vm::PageSize::k4K);
    const vm::VAddr cmat = proc.mmap(
        page_round(std::uint64_t{cfg.m} * cfg.n * 4), vm::PageSize::k4K);
    vm::VAddr abuf[2], bbuf[2];
    for (int s = 0; s < 2; ++s) {
        abuf[s] = proc.mmap(page_round(tile_bytes), vm::PageSize::k4K,
                            kernel.fast_node());
        bbuf[s] = proc.mmap(page_round(tile_bytes), vm::PageSize::k4K,
                            kernel.fast_node());
    }
    MEMIF_ASSERT(a && b && cmat && abuf[0] && bbuf[0] && abuf[1] &&
                     bbuf[1],
                 "tile_matmul mappings failed");

    // Deterministic real operands so the FMA loops chew actual values.
    {
        sim::Rng rng(cfg.seed);
        std::vector<float> chunk(4096 / sizeof(float));
        for (const vm::VAddr base : {a, b}) {
            const std::uint64_t bytes =
                base == a ? page_round(std::uint64_t{cfg.m} * cfg.k * 4)
                          : page_round(std::uint64_t{cfg.k} * cfg.n * 4);
            for (std::uint64_t off = 0; off < bytes; off += 4096) {
                for (float &v : chunk)
                    v = static_cast<float>(rng.next_double() - 0.5);
                as.write(base + off, chunk.data(), 4096);
            }
        }
    }

    const sim::CostModel &cm = kernel.costs();
    const std::uint32_t mt = cfg.m / T, nt = cfg.n / T, kt = cfg.k / T;
    const bool dma = cfg.staging != TileStaging::kCpuCopy;
    const bool per_row = cfg.staging == TileStaging::kPerRowFlat;

    StageCtx ctx;
    ctx.memfd = memfd;
    TileMatmulResult res;
    res.checksum = 1469598103934665603ull;
    std::vector<float> acc(std::size_t{T} * T);
    std::vector<float> ta(std::size_t{T} * T), tb(std::size_t{T} * T);
    std::vector<unsigned char> rowtmp(row_bytes);
    const sim::SimTime t0 = kernel.eq().now();

    // Stage the (A, B) pair of step kk into pair slot @p slot.
    const auto src_a = [&](std::uint32_t i, std::uint32_t kk) {
        return a + (std::uint64_t{i} * T * cfg.k + std::uint64_t{kk} * T) *
                       sizeof(float);
    };
    const auto src_b = [&](std::uint32_t kk, std::uint32_t j) {
        return b + (std::uint64_t{kk} * T * cfg.n + std::uint64_t{j} * T) *
                       sizeof(float);
    };

    for (std::uint32_t i = 0; i < mt; ++i) {
        for (std::uint32_t j = 0; j < nt; ++j) {
            std::memset(acc.data(), 0, acc.size() * sizeof(float));
            int cur = 0;
            // stage_pair(slot, kk): either two DMA requests or a
            // synchronous CPU pitched copy charged at the copy model.
            const auto stage_pair = [&](int slot,
                                        std::uint32_t kk) -> sim::Task {
                if (dma) {
                    ctx.t_issue[slot] = kernel.eq().now();
                    co_await stage_tile(kernel, ctx, slot, abuf[slot],
                                        src_a(i, kk),
                                        static_cast<std::uint32_t>(
                                            row_bytes),
                                        T, std::uint64_t{cfg.k} * 4,
                                        per_row);
                    co_await stage_tile(kernel, ctx, slot, bbuf[slot],
                                        src_b(kk, j),
                                        static_cast<std::uint32_t>(
                                            row_bytes),
                                        T, std::uint64_t{cfg.n} * 4,
                                        per_row);
                } else {
                    for (std::uint32_t r = 0; r < T; ++r) {
                        as.read(src_a(i, kk) + r * std::uint64_t{cfg.k} *
                                                   4,
                                rowtmp.data(), row_bytes);
                        as.write(abuf[slot] + r * row_bytes,
                                 rowtmp.data(), row_bytes);
                        as.read(src_b(kk, j) + r * std::uint64_t{cfg.n} *
                                                   4,
                                rowtmp.data(), row_bytes);
                        as.write(bbuf[slot] + r * row_bytes,
                                 rowtmp.data(), row_bytes);
                    }
                    co_await kernel.cpu().busy(
                        sim::ExecContext::kUser, sim::Op::kOther,
                        cm.cpu_copy_fixed +
                            static_cast<sim::Duration>(
                                1e9 * 2.0 *
                                static_cast<double>(tile_bytes) /
                                cm.cpu_copy_bw));
                }
                res.bytes_staged += 2 * tile_bytes;
                res.tiles_staged += 2;
            };
            co_await stage_pair(cur, 0);
            for (std::uint32_t kk = 0; kk < kt; ++kk) {
                const int nxt = 1 - cur;
                if (cfg.double_buffer && dma && kk + 1 < kt)
                    co_await stage_pair(nxt, kk + 1);
                if (dma) {
                    co_await wait_slot(kernel, ctx, cur);
                    res.dma_total +=
                        ctx.t_done[cur] - ctx.t_issue[cur];
                }
                // Consume the staged pair: checksum always (the
                // byte-exactness proof), real FMAs when computing.
                as.read(abuf[cur], ta.data(), tile_bytes);
                as.read(bbuf[cur], tb.data(), tile_bytes);
                res.checksum = fnv1a(res.checksum, ta.data(), tile_bytes);
                res.checksum = fnv1a(res.checksum, tb.data(), tile_bytes);
                if (cfg.compute) {
                    for (std::uint32_t r = 0; r < T; ++r)
                        for (std::uint32_t x = 0; x < T; ++x) {
                            const float av = ta[r * T + x];
                            for (std::uint32_t cc = 0; cc < T; ++cc)
                                acc[r * T + cc] += av * tb[x * T + cc];
                        }
                    const double flops = 2.0 * T * T * static_cast<double>(T);
                    const sim::Duration d = static_cast<sim::Duration>(
                        flops / kFlopsPerNs);
                    co_await kernel.cpu().busy(sim::ExecContext::kUser,
                                               sim::Op::kOther, d);
                    res.compute_total += d;
                }
                if (!(cfg.double_buffer && dma) && kk + 1 < kt)
                    co_await stage_pair(nxt, kk + 1);
                cur = nxt;
            }
            if (cfg.compute) {
                for (std::uint32_t r = 0; r < T; ++r)
                    as.write(cmat + ((std::uint64_t{i} * T + r) * cfg.n +
                                     std::uint64_t{j} * T) *
                                        sizeof(float),
                             &acc[std::size_t{r} * T], row_bytes);
                res.checksum = fnv1a(res.checksum, acc.data(),
                                     acc.size() * sizeof(float));
            }
        }
    }

    res.elapsed = kernel.eq().now() - t0;
    res.requests_submitted = ctx.requests;
    if (out) *out = res;
    co_return;
}

}  // namespace memif::workloads
