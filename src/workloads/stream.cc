#include "workloads/stream.h"

#include <bit>
#include <cmath>
#include <cstring>

namespace memif::workloads {

namespace {

/** Order-independent digest fold (addition commutes). */
std::uint64_t
fold(double v)
{
    return std::bit_cast<std::uint64_t>(v) * 0x9E3779B97F4A7C15ull;
}

// Calibration (see file header of stream.h): slow_bw on the platform is
// 6.2 GB/s.
//  - triad/add from slow: 6.2 / 2.62 ~ 2.37 GB/s  (paper 2.38/2.39)
//  - triad/add ceiling:   3.20 GB/s compute-bound in fast memory
//    (roughly the DMA fill bound of 6.2 / 2 GB/s)   (paper 3.18)
//  - pgain from slow:     6.2 / 4.30 ~ 1.44 GB/s  (paper 1.44)
//  - pgain ceiling:       1.80 GB/s compute-bound  (paper 1.78)
runtime::KernelModel
triad_model(const char *name)
{
    return runtime::KernelModel{.name = name,
                                .compute_rate_fast = 3.2e9,
                                .slow_traffic_factor = 2.62,
                                .fill_factor = 2.0};
}

}  // namespace

StreamTriad::StreamTriad() : StreamKernel(triad_model("STREAM.triad")) {}

void
StreamTriad::process(const std::byte *data, std::uint64_t bytes)
{
    const std::uint64_t pairs = bytes / (2 * sizeof(double));
    const double *d = reinterpret_cast<const double *>(data);
    double acc = 0.0;
    for (std::uint64_t i = 0; i < pairs; ++i) {
        const double a = d[2 * i] + kScalar * d[2 * i + 1];
        acc += a;
    }
    digest_ += fold(acc) + pairs;
}

StreamAdd::StreamAdd() : StreamKernel(triad_model("STREAM.add")) {}

void
StreamAdd::process(const std::byte *data, std::uint64_t bytes)
{
    const std::uint64_t pairs = bytes / (2 * sizeof(double));
    const double *d = reinterpret_cast<const double *>(data);
    double acc = 0.0;
    for (std::uint64_t i = 0; i < pairs; ++i)
        acc += d[2 * i] + d[2 * i + 1];
    digest_ += fold(acc) + pairs;
}

StreamClusterPgain::StreamClusterPgain()
    : StreamKernel(runtime::KernelModel{
          .name = "StreamCluster.pgain",
          .compute_rate_fast = 1.80e9,
          .slow_traffic_factor = 4.30,
          .fill_factor = 1.0})
{
}

void
StreamClusterPgain::process(const std::byte *data, std::uint64_t bytes)
{
    // Candidate center at the origin-ish point; each streamed point
    // contributes min(distance^2, assignment_cost).
    static constexpr float kAssignCost = 4.0f;
    const std::uint64_t points = bytes / (kDim * sizeof(float));
    const float *f = reinterpret_cast<const float *>(data);
    double acc = 0.0;
    for (std::uint64_t p = 0; p < points; ++p) {
        float dist = 0.0f;
        for (unsigned d = 0; d < kDim; ++d) {
            const float x = f[p * kDim + d] - 0.5f;
            dist += x * x;
        }
        acc += dist < kAssignCost ? dist : kAssignCost;
    }
    gain_ += acc;
    digest_ += fold(acc) + points;
}

}  // namespace memif::workloads
