#include "memif/xlate_cache.h"

namespace memif {

const XlateCache::Entry *
XlateCache::lookup(const vm::Vma *vma, std::uint64_t first, std::uint64_t n)
{
    for (Entry &e : entries_) {
        if (e.covers(vma, first, n)) {
            e.tick = ++tick_;
            return &e;
        }
    }
    return nullptr;
}

void
XlateCache::record(const vm::Vma *vma, std::uint64_t first,
                   std::vector<vm::Pte> ptes)
{
    if (ptes.empty()) return;
    for (Entry &e : entries_) {
        if (e.vma == vma && e.first_page == first) {
            e.ptes = std::move(ptes);
            e.generation = generation_;
            e.tick = ++tick_;
            return;
        }
    }
    if (entries_.size() >= max_entries_) {
        std::size_t victim = 0;
        for (std::size_t i = 1; i < entries_.size(); ++i)
            if (entries_[i].tick < entries_[victim].tick) victim = i;
        entries_.erase(entries_.begin() +
                       static_cast<std::ptrdiff_t>(victim));
    }
    Entry e;
    e.vma = vma;
    e.first_page = first;
    e.ptes = std::move(ptes);
    e.generation = generation_;
    e.tick = ++tick_;
    entries_.push_back(std::move(e));
}

std::uint64_t
XlateCache::invalidate(const vm::Vma *vma, std::uint64_t first,
                       std::uint64_t n)
{
    ++generation_;
    std::uint64_t dropped = 0;
    for (std::size_t i = 0; i < entries_.size();) {
        const Entry &e = entries_[i];
        const bool overlaps = e.vma == vma && first < e.first_page + e.num_pages() &&
                              e.first_page < first + n;
        if (overlaps) {
            entries_.erase(entries_.begin() + static_cast<std::ptrdiff_t>(i));
            ++dropped;
        } else {
            ++i;
        }
    }
    // Pending prefetches over the range snapshot translations that may
    // predate this invalidation; poison them so the fill is discarded.
    for (Pending &p : pending_) {
        if (p.vma == vma && first < p.first_page + p.num_pages &&
            p.first_page < first + n)
            p.killed = true;
    }
    return dropped;
}

std::uint64_t
XlateCache::begin_prefetch(const vm::Vma *vma, std::uint64_t first,
                           std::uint64_t n)
{
    Pending p;
    p.vma = vma;
    p.first_page = first;
    p.num_pages = n;
    p.token = ++next_token_;
    pending_.push_back(p);
    return p.token;
}

bool
XlateCache::fill_prefetch(std::uint64_t token, std::vector<vm::Pte> ptes)
{
    for (std::size_t i = 0; i < pending_.size(); ++i) {
        if (pending_[i].token != token) continue;
        const Pending p = pending_[i];
        pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(i));
        if (p.killed) return false;
        record(p.vma, p.first_page, std::move(ptes));
        return true;
    }
    return false;  // unknown token (e.g. cache cleared); drop the fill
}

}  // namespace memif
