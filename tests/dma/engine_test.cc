/**
 * @file
 * Unit tests for the EDMA3 engine model: real byte movement, chain
 * timing from the bandwidth model, interrupt vs polled completion, TC
 * serialization, and cancellation.
 */
#include "dma/engine.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "dma/descriptor.h"
#include "mem/phys.h"
#include "sim/cost_model.h"
#include "sim/event_queue.h"

namespace memif::dma {
namespace {

struct Fixture {
    sim::EventQueue eq;
    mem::PhysicalMemory pm;
    sim::CostModel cm;
    mem::NodeId slow, fast;
    Edma3Engine engine{eq, pm, cm};

    Fixture()
    {
        auto ids = mem::KeystoneMemory::build(pm, 32ull << 20);
        slow = ids.first;
        fast = ids.second;
    }

    std::uint64_t addr(mem::Pfn pfn) const { return pfn << mem::kPageShift; }
};

TEST(Descriptor, ContiguousSmallUsesAcntOnly)
{
    const TransferDescriptor d =
        TransferDescriptor::contiguous(0x1000, 0x2000, 4096);
    EXPECT_EQ(d.a_cnt, 4096);
    EXPECT_EQ(d.b_cnt, 1);
    EXPECT_EQ(d.total_bytes(), 4096u);
}

TEST(Descriptor, ContiguousLargeSplitsIntoArrays)
{
    const TransferDescriptor d =
        TransferDescriptor::contiguous(0, 0x200000, 2u << 20);
    EXPECT_EQ(d.a_cnt, 4096);
    EXPECT_EQ(d.b_cnt, 512);
    EXPECT_EQ(d.src_bidx, 4096);
    EXPECT_EQ(d.total_bytes(), 2u << 20);
}

TEST(DescriptorRam, CountsWriteKinds)
{
    DescriptorRam ram;
    ram.write_full(0, TransferDescriptor::contiguous(0, 4096, 4096));
    ram.rewrite_src_dst(0, 8192, 12288);
    ram.rewrite_link(0, 5);
    EXPECT_EQ(ram.stats().full_writes, 1u);
    EXPECT_EQ(ram.stats().partial_writes, 2u);
    EXPECT_EQ(ram.read(0).link, 5);
}

TEST(Engine, SingleDescriptorCopiesRealBytes)
{
    Fixture f;
    const mem::Pfn src = f.pm.allocate(f.slow, 0);
    const mem::Pfn dst = f.pm.allocate(f.fast, 0);
    std::byte *s = f.pm.span(src, mem::kPageSize);
    for (unsigned i = 0; i < mem::kPageSize; ++i)
        s[i] = static_cast<std::byte>(i ^ 0x5A);

    f.engine.param_ram().write_full(
        7, TransferDescriptor::contiguous(f.addr(src), f.addr(dst),
                                          mem::kPageSize));
    bool fired = false;
    const TransferId id = f.engine.start_chain(
        7, 0, true, [&](TransferId) { fired = true; });
    // Bytes must not move before completion time.
    EXPECT_NE(std::memcmp(f.pm.span(dst, mem::kPageSize), s, mem::kPageSize),
              0);
    f.eq.run();
    EXPECT_TRUE(fired);
    EXPECT_TRUE(f.engine.is_complete(id));
    EXPECT_EQ(std::memcmp(f.pm.span(dst, mem::kPageSize), s, mem::kPageSize),
              0);
    EXPECT_EQ(f.engine.stats().bytes_copied, mem::kPageSize);
}

TEST(Engine, ChainFollowsLinksAndSumsTime)
{
    Fixture f;
    std::vector<mem::Pfn> srcs, dsts;
    for (int i = 0; i < 4; ++i) {
        srcs.push_back(f.pm.allocate(f.slow, 0));
        dsts.push_back(f.pm.allocate(f.fast, 0));
        std::memset(f.pm.span(srcs.back(), mem::kPageSize), 0x10 + i,
                    mem::kPageSize);
    }
    for (int i = 0; i < 4; ++i) {
        TransferDescriptor d = TransferDescriptor::contiguous(
            f.addr(srcs[i]), f.addr(dsts[i]), mem::kPageSize);
        d.link = (i < 3) ? static_cast<DescIndex>(i + 1) : kNullLink;
        f.engine.param_ram().write_full(static_cast<DescIndex>(i), d);
    }
    const sim::Duration expected =
        f.cm.dma_latency +
        4 * (f.cm.dma_per_desc +
             f.cm.dma_stream_time(mem::kPageSize, 6.2e9, 24.0e9));
    EXPECT_EQ(f.engine.chain_duration(0), expected);

    f.engine.start_chain(0, 0, false, nullptr);
    f.eq.run();
    EXPECT_EQ(f.eq.now(), expected);
    for (int i = 0; i < 4; ++i) {
        EXPECT_EQ(*f.pm.span(dsts[static_cast<size_t>(i)], 1),
                  static_cast<std::byte>(0x10 + i));
    }
}

TEST(Engine, PolledModeRaisesNoInterrupt)
{
    Fixture f;
    const mem::Pfn src = f.pm.allocate(f.slow, 0);
    const mem::Pfn dst = f.pm.allocate(f.fast, 0);
    f.engine.param_ram().write_full(
        0, TransferDescriptor::contiguous(f.addr(src), f.addr(dst),
                                          mem::kPageSize));
    const TransferId id = f.engine.start_chain(0, 0, false, nullptr);
    EXPECT_FALSE(f.engine.is_complete(id));
    f.eq.run();
    EXPECT_TRUE(f.engine.is_complete(id));
    EXPECT_EQ(f.engine.stats().interrupts_raised, 0u);
    EXPECT_EQ(f.engine.stats().transfers_completed, 1u);
}

TEST(Engine, SameTcSerializesTransfers)
{
    Fixture f;
    const mem::Pfn a = f.pm.allocate(f.slow, 0);
    const mem::Pfn b = f.pm.allocate(f.fast, 0);
    f.engine.param_ram().write_full(
        0, TransferDescriptor::contiguous(f.addr(a), f.addr(b),
                                          mem::kPageSize));
    f.engine.param_ram().write_full(
        1, TransferDescriptor::contiguous(f.addr(a), f.addr(b),
                                          mem::kPageSize));
    const TransferId first = f.engine.start_chain(0, 0, false, nullptr);
    const TransferId second = f.engine.start_chain(1, 0, false, nullptr);
    EXPECT_EQ(f.engine.completion_time(second),
              2 * f.engine.completion_time(first));
}

TEST(Engine, DifferentTcsOverlap)
{
    Fixture f;
    const mem::Pfn a = f.pm.allocate(f.slow, 0);
    const mem::Pfn b = f.pm.allocate(f.fast, 0);
    f.engine.param_ram().write_full(
        0, TransferDescriptor::contiguous(f.addr(a), f.addr(b),
                                          mem::kPageSize));
    f.engine.param_ram().write_full(
        1, TransferDescriptor::contiguous(f.addr(a), f.addr(b),
                                          mem::kPageSize));
    const TransferId first = f.engine.start_chain(0, 0, false, nullptr);
    const TransferId second = f.engine.start_chain(1, 1, false, nullptr);
    EXPECT_EQ(f.engine.completion_time(second),
              f.engine.completion_time(first));
}

TEST(Engine, CancelPreventsCopyAndCallback)
{
    Fixture f;
    const mem::Pfn src = f.pm.allocate(f.slow, 0);
    const mem::Pfn dst = f.pm.allocate(f.fast, 0);
    std::memset(f.pm.span(src, mem::kPageSize), 0x77, mem::kPageSize);
    f.engine.param_ram().write_full(
        0, TransferDescriptor::contiguous(f.addr(src), f.addr(dst),
                                          mem::kPageSize));
    bool fired = false;
    const TransferId id =
        f.engine.start_chain(0, 0, true, [&](TransferId) { fired = true; });
    EXPECT_TRUE(f.engine.cancel(id));
    f.eq.run();
    EXPECT_FALSE(fired);
    EXPECT_FALSE(f.engine.is_complete(id));
    EXPECT_EQ(*f.pm.span(dst, 1), std::byte{0});
    EXPECT_EQ(f.engine.stats().transfers_cancelled, 1u);
    // Cancelling a finished transfer fails.
    const TransferId id2 = f.engine.start_chain(0, 0, false, nullptr);
    f.eq.run();
    EXPECT_FALSE(f.engine.cancel(id2));
}

struct FaultFixture : Fixture {
    sim::FaultInjector faults;
    Edma3Engine faulty{eq, pm, cm, &faults};

    /** One page slow->fast programmed at descriptor 0; src = 0x5A. */
    mem::Pfn src, dst;
    FaultFixture()
    {
        src = pm.allocate(slow, 0);
        dst = pm.allocate(fast, 0);
        std::memset(pm.span(src, mem::kPageSize), 0x5A, mem::kPageSize);
        faulty.param_ram().write_full(
            0, TransferDescriptor::contiguous(addr(src), addr(dst),
                                              mem::kPageSize));
    }
};

TEST(EngineFault, TcErrorCompletesWithoutBytesButInterrupts)
{
    FaultFixture f;
    f.faults.arm_nth(kFaultTcError, 1);
    bool fired = false;
    const TransferId id =
        f.faulty.start_chain(0, 0, true, [&](TransferId) { fired = true; });
    f.eq.run();
    // The CC error interrupt still dispatches the callback, the chain
    // completes, but not one byte landed: all-or-nothing destinations.
    EXPECT_TRUE(fired);
    EXPECT_TRUE(f.faulty.is_complete(id));
    EXPECT_EQ(f.faulty.status(id), TransferStatus::kError);
    EXPECT_EQ(*f.pm.span(f.dst, 1), std::byte{0});
    EXPECT_EQ(f.faulty.stats().transfers_failed, 1u);
    EXPECT_EQ(f.faulty.stats().transfers_completed, 0u);
    EXPECT_EQ(f.faulty.stats().bytes_copied, 0u);
}

TEST(EngineFault, SecondTransferUnaffectedByNthTrigger)
{
    FaultFixture f;
    f.faults.arm_nth(kFaultTcError, 1);
    f.faulty.start_chain(0, 0, false, nullptr);
    f.eq.run();
    const TransferId id2 = f.faulty.start_chain(0, 0, false, nullptr);
    f.eq.run();
    EXPECT_EQ(f.faulty.status(id2), TransferStatus::kOk);
    EXPECT_EQ(*f.pm.span(f.dst, 1), std::byte{0x5A});
}

TEST(EngineFault, LostIrqMovesBytesButSkipsCallback)
{
    FaultFixture f;
    f.faults.arm_nth(kFaultLostIrq, 1);
    bool fired = false;
    const TransferId id =
        f.faulty.start_chain(0, 0, true, [&](TransferId) { fired = true; });
    f.eq.run();
    EXPECT_FALSE(fired);
    EXPECT_TRUE(f.faulty.is_complete(id));
    EXPECT_EQ(f.faulty.status(id), TransferStatus::kOk);
    EXPECT_EQ(*f.pm.span(f.dst, 1), std::byte{0x5A});
    EXPECT_EQ(f.faulty.stats().interrupts_lost, 1u);
    EXPECT_EQ(f.faulty.stats().interrupts_raised, 0u);
}

TEST(EngineFault, LostIrqOnlyAppliesToIrqMode)
{
    FaultFixture f;
    f.faults.arm_probability(kFaultLostIrq, 1.0);
    const TransferId id = f.faulty.start_chain(0, 0, false, nullptr);
    f.eq.run();
    // Polled transfers have no interrupt to lose.
    EXPECT_TRUE(f.faulty.is_complete(id));
    EXPECT_EQ(f.faulty.stats().interrupts_lost, 0u);
    EXPECT_EQ(*f.pm.span(f.dst, 1), std::byte{0x5A});
}

TEST(EngineFault, StuckTransferNeverCompletesUntilCancelled)
{
    FaultFixture f;
    f.faults.arm_nth(kFaultStuck, 1);
    bool fired = false;
    const TransferId id =
        f.faulty.start_chain(0, 0, true, [&](TransferId) { fired = true; });
    f.eq.run();  // the completion event runs but the flight stays open
    EXPECT_FALSE(fired);
    EXPECT_FALSE(f.faulty.is_complete(id));
    EXPECT_EQ(*f.pm.span(f.dst, 1), std::byte{0});
    EXPECT_TRUE(f.faulty.cancel(id));
    EXPECT_EQ(f.faulty.status(id), TransferStatus::kCancelled);
}

TEST(EngineFault, StuckWinsOverTcErrorWhenBothFire)
{
    FaultFixture f;
    f.faults.arm_probability(kFaultStuck, 1.0);
    f.faults.arm_probability(kFaultTcError, 1.0);
    const TransferId id = f.faulty.start_chain(0, 0, true, nullptr);
    f.eq.run();
    EXPECT_FALSE(f.faulty.is_complete(id));
    EXPECT_EQ(f.faulty.stats().transfers_failed, 0u);
}

TEST(Engine, FlightTableAutoPurgesAtThreshold)
{
    Fixture f;
    const mem::Pfn src = f.pm.allocate(f.slow, 0);
    const mem::Pfn dst = f.pm.allocate(f.fast, 0);
    f.engine.param_ram().write_full(
        0, TransferDescriptor::contiguous(f.addr(src), f.addr(dst),
                                          mem::kPageSize));
    // Run well past the threshold without ever calling purge_finished():
    // the table must stay bounded by the auto-purge in start_chain.
    const std::size_t n = Edma3Engine::kPurgeThreshold * 2 + 10;
    for (std::size_t i = 0; i < n; ++i) {
        f.engine.start_chain(0, 0, false, nullptr);
        f.eq.run();
    }
    EXPECT_LE(f.engine.flight_count(), Edma3Engine::kPurgeThreshold);
    EXPECT_EQ(f.engine.stats().transfers_completed, n);
}

TEST(Engine, StatusOfPurgedAndInFlightIdsIsOk)
{
    Fixture f;
    const mem::Pfn src = f.pm.allocate(f.slow, 0);
    const mem::Pfn dst = f.pm.allocate(f.fast, 0);
    f.engine.param_ram().write_full(
        0, TransferDescriptor::contiguous(f.addr(src), f.addr(dst),
                                          mem::kPageSize));
    const TransferId id = f.engine.start_chain(0, 0, false, nullptr);
    EXPECT_EQ(f.engine.status(id), TransferStatus::kOk);  // in flight
    f.eq.run();
    f.engine.purge_finished();
    EXPECT_EQ(f.engine.status(id), TransferStatus::kOk);  // purged
}

TEST(Engine, BandwidthBoundBySlowerNode)
{
    Fixture f;
    // slow->fast at 6.2 GB/s vs fast->fast at 24 GB/s.
    const mem::Pfn s0 = f.pm.allocate(f.slow, 0);
    const mem::Pfn f0 = f.pm.allocate(f.fast, 0);
    const mem::Pfn f1 = f.pm.allocate(f.fast, 0);
    f.engine.param_ram().write_full(
        0, TransferDescriptor::contiguous(f.addr(s0), f.addr(f0),
                                          mem::kPageSize));
    f.engine.param_ram().write_full(
        1, TransferDescriptor::contiguous(f.addr(f0), f.addr(f1),
                                          mem::kPageSize));
    EXPECT_GT(f.engine.chain_duration(0), f.engine.chain_duration(1));
}

}  // namespace
}  // namespace memif::dma
