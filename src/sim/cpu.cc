#include "sim/cpu.h"

namespace memif::sim {

std::string_view
to_string(ExecContext c)
{
    switch (c) {
      case ExecContext::kUser: return "user";
      case ExecContext::kSyscall: return "syscall";
      case ExecContext::kIrq: return "irq";
      case ExecContext::kKthread: return "kthread";
      default: return "?";
    }
}

std::string_view
to_string(Op op)
{
    switch (op) {
      case Op::kPrep: return "prep";
      case Op::kRemap: return "remap";
      case Op::kDmaConfig: return "dma-cfg";
      case Op::kCopy: return "copy";
      case Op::kRelease: return "release";
      case Op::kNotify: return "notify";
      case Op::kSyscall: return "syscall";
      case Op::kQueue: return "queue";
      case Op::kSched: return "sched";
      case Op::kOther: return "other";
      default: return "?";
    }
}

CpuAccounting
CpuAccounting::since(const CpuAccounting &earlier) const
{
    CpuAccounting d;
    for (std::size_t i = 0; i < by_context.size(); ++i)
        d.by_context[i] = by_context[i] - earlier.by_context[i];
    for (std::size_t i = 0; i < by_op.size(); ++i)
        d.by_op[i] = by_op[i] - earlier.by_op[i];
    d.total = total - earlier.total;
    return d;
}

}  // namespace memif::sim
