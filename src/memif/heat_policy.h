/**
 * @file
 * Heat accounting and placement policies for memif-managed mode.
 *
 * The scan kthread folds one sample per page bucket per epoch (from
 * the young/dirty bits it test-and-rearms); the migration daemon asks
 * for a verdict per bucket. Everything here is pure arithmetic over
 * those samples — no simulator, device or clock dependencies — so the
 * decay math and hysteresis bands are unit-testable in isolation.
 *
 * Two policies ship behind MemifConfig::migrate_policy:
 *
 *  - kAging: LRU-ish aging vector per bucket. Each epoch shifts the
 *    vector right and ORs the new sample into the MSB, so recency
 *    dominates and one idle epoch halves a bucket's score. Promote at
 *    or above aging_promote_threshold, demote strictly below
 *    aging_demote_threshold; the gap between the two thresholds is the
 *    hysteresis band.
 *
 *  - kEwma: decayed access-rate estimate. rate' = alpha * sample +
 *    (1 - alpha) * rate with sample = accessed fraction of the
 *    bucket's sampled pages. A bucket turns hot when the rate crosses
 *    ewma_hot_enter from below and turns cold only when it falls to
 *    ewma_cold_exit — the band between the two absorbs oscillating
 *    patterns (no ping-pong on a 50% duty cycle).
 */
#pragma once

#include <cstdint>
#include <vector>

namespace memif::core {

/** Placement policy selector (MemifConfig::migrate_policy sub-lever). */
enum class MigratePolicy : std::uint8_t {
    kAging = 0,  ///< aging bit-vector, recency-weighted
    kEwma = 1,   ///< decayed frequency estimate with hysteresis bands
};

/** Tuning knobs for RegionHeat (copied from MemifConfig at attach). */
struct HeatConfig {
    MigratePolicy policy = MigratePolicy::kAging;
    /** Pages aggregated into one heat bucket (the migration unit). */
    std::uint32_t bucket_pages = 8;
    /** kAging: promote when the aging vector reaches this value. */
    std::uint8_t aging_promote_threshold = 0x60;
    /** kAging: demote when the aging vector falls strictly below. */
    std::uint8_t aging_demote_threshold = 0x10;
    /** kEwma: decay factor applied to the new sample. */
    double ewma_alpha = 0.4;
    /** kEwma: rate at or above which a bucket enters the hot set. */
    double ewma_hot_enter = 0.6;
    /** kEwma: rate at or below which a bucket leaves the hot set. */
    double ewma_cold_exit = 0.2;
    /** Hot-state flips closer than this many epochs count as ping-pong. */
    std::uint32_t pingpong_window = 4;
    // Third band (tiered_memory): the cold set, placed on the far
    // tier. Its hysteresis is independent of the hot band's — a bucket
    // is cold only while far below the warm floor, so the warm middle
    // band (neither hot nor cold) rests on DDR.
    /** kAging: enter the cold set at or below this aging value. */
    std::uint8_t aging_cold_enter = 0x02;
    /** kAging: leave the cold set at or above this aging value. */
    std::uint8_t aging_cold_exit = 0x08;
    /** kEwma: rate at or below which a bucket enters the cold set. */
    double ewma_far_enter = 0.05;
    /** kEwma: rate at or above which a bucket leaves the cold set. */
    double ewma_far_exit = 0.12;
};

/** What the daemon should do with one bucket this epoch. */
enum class HeatVerdict : std::uint8_t { kStay = 0, kPromote, kDemote };

/** Which tier a bucket currently lives on (tiered_memory mode). */
enum class HeatTier : std::uint8_t { kFast = 0, kSlow = 1, kFar = 2 };

/** Three-way placement verdict (tiered_memory mode): hot buckets
 *  belong on the fast tier, warm buckets stop at DDR, cold buckets
 *  sink to the far tier. */
enum class TierVerdict : std::uint8_t { kStay = 0, kToFast, kToSlow, kToFar };

/** Per-bucket decayed heat state. */
struct HeatBucket {
    std::uint8_t age = 0;          ///< kAging recency vector (MSB newest)
    double rate = 0.0;             ///< kEwma access-rate estimate
    bool hot = false;              ///< hysteresis state (classification)
    /** Third-band hysteresis state. Maintained by every fold() but only
     *  consulted by classify_tiered(), so two-tier callers are
     *  unaffected. Mutually exclusive with hot. */
    bool cold = false;
    /** Starts saturated so the first flip (initial classification)
     *  never counts as a ping-pong. */
    std::uint32_t epochs_since_flip = ~0u;
    std::uint64_t accessed_epochs = 0;  ///< epochs with any access seen
    std::uint64_t written_epochs = 0;   ///< epochs with any dirty page
};

/**
 * Heat state for one managed region: a HeatBucket per bucket_pages
 * run of pages, plus the fold/classify machinery shared by both
 * policies.
 */
class RegionHeat {
  public:
    RegionHeat(const HeatConfig &config, std::uint64_t num_pages);

    std::uint64_t num_buckets() const { return buckets_.size(); }
    std::uint64_t bucket_of(std::uint64_t page_idx) const
    {
        return page_idx / config_.bucket_pages;
    }
    /** First page index of @p bucket. */
    std::uint64_t first_page(std::uint64_t bucket) const
    {
        return bucket * config_.bucket_pages;
    }
    /** Number of pages in @p bucket (the last one may be short). */
    std::uint32_t pages_in(std::uint64_t bucket) const;

    /**
     * Fold one epoch's sample for @p bucket: of @p sampled examined
     * pages, @p accessed had their young bit cleared and @p written
     * were dirty. Call exactly once per bucket per epoch — the decay
     * step is applied here, so unsampled epochs must still fold zeros.
     */
    void fold(std::uint64_t bucket, std::uint32_t accessed,
              std::uint32_t written, std::uint32_t sampled);

    /**
     * The policy's desired action for @p bucket given where it lives
     * now. Pure read of the hysteresis state updated by fold().
     */
    HeatVerdict classify(std::uint64_t bucket, bool resident_fast) const;

    /**
     * Three-way verdict for @p bucket given the tier it lives on now
     * (tiered_memory mode). Same hysteresis reads as classify() for
     * the hot band, plus the cold band maintained by fold(): hot
     * buckets head for the fast tier, cold buckets for the far tier,
     * and the warm remainder rests on DDR.
     */
    TierVerdict classify_tiered(std::uint64_t bucket,
                                HeatTier resident) const;

    const HeatBucket &bucket(std::uint64_t i) const { return buckets_[i]; }

    /**
     * Forget a cold bucket's stale sub-threshold heat on wake from
     * dormancy. The sleep gap is unobserved, so heat frozen at entry
     * must not combine with fresh post-wake touches — a rotation that
     * happens to coincide with successive probe epochs would otherwise
     * accumulate across sleeps and cross the promote threshold. Hot
     * buckets keep their state: their dormancy already required a
     * fully-touched bucket, and active folds demote them promptly if
     * the access pattern died while they slept.
     */
    void reset_cold(std::uint64_t bucket)
    {
        HeatBucket &b = buckets_[bucket];
        if (!b.hot) {
            b.age = 0;
            b.rate = 0.0;
        }
    }

    /** Hot-state flips inside pingpong_window epochs (stability metric). */
    std::uint64_t ping_pongs() const { return ping_pongs_; }

    /**
     * Histogram of the current heat distribution: bucket counts in 8
     * score octiles (score = age/255 or EWMA rate, by policy).
     */
    std::vector<std::uint64_t> histogram() const;

  private:
    double score(const HeatBucket &b) const;

    HeatConfig config_;
    std::uint64_t num_pages_ = 0;
    std::vector<HeatBucket> buckets_;
    std::uint64_t ping_pongs_ = 0;
};

}  // namespace memif::core
