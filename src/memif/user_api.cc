#include "memif/user_api.h"

#include "sim/cost_model.h"
#include "sim/log.h"

namespace memif::core {

using lockfree::Color;
using lockfree::DequeueResult;

void
MemifUser::charge_queue_op(std::uint64_t n)
{
    dev_.kernel().cpu().charge(sim::ExecContext::kUser, sim::Op::kQueue,
                               n * dev_.kernel().costs().queue_op);
}

std::uint32_t
MemifUser::alloc_request()
{
    const DequeueResult d = region_.free_queue().dequeue();
    charge_queue_op();
    if (!d.ok) return kNoRequest;
    MovReq &req = region_.request(d.value);
    req.store_status(MovStatus::kOwned);
    req.error = MovError::kNone;
    return d.value;
}

void
MemifUser::free_request(std::uint32_t idx)
{
    MovReq &req = region_.request(idx);
    MEMIF_ASSERT(req.load_status() != MovStatus::kFree, "double free_request");
    req.store_status(MovStatus::kFree);
    region_.free_queue().enqueue(idx);
    charge_queue_op();
}

sim::Task
MemifUser::submit(std::uint32_t idx, bool *kicked)
{
    ++stats_.submits;
    if (kicked) *kicked = false;

    MovReq &req = region_.request(idx);
    req.submit_time = dev_.kernel().eq().now();
    req.submit_cpu = cpu_id_;
    req.asid = asid_;
    // Admission control runs here, in the caller's context, before the
    // request becomes visible to the kernel: a rejected request is
    // completed as kFailed/kNoSpace immediately (with a retry-after
    // hint) and never enters a queue.
    if (!dev_.admit_request(idx)) {
        ++stats_.rejected;
        co_return;
    }
    req.store_status(MovStatus::kSubmitted);
    dev_.kernel().tracer().record(req.submit_time, sim::TracePoint::kSubmit,
                                  sim::ExecContext::kUser, idx);

    if (region_.num_rings() > 0) {
        // Per-CPU rings: deposit in OUR ring — no other CPU touches it,
        // so no contention retry can occur. The §4.4 color protocol is
        // applied per ring: blue means the kernel thread is asleep and
        // this depositor must flush, recolor red, and kick (once per
        // idle period per ring).
        const std::uint32_t r = my_ring();
        lockfree::RedBlueQueue ring = region_.ring_queue(r);
        lockfree::RedBlueQueue submission = region_.submission_queue();
        const Color color = ring.enqueue(idx);
        charge_queue_op();
        ++dev_.stats_.ring_submits[r];
        if (color != Color::kBlue) co_return;  // kernel awake
        for (;;) {
            for (;;) {
                const DequeueResult d = ring.dequeue();
                charge_queue_op();
                if (!d.ok) break;
                submission.enqueue(d.value);
                charge_queue_op();
                ++stats_.flush_moves;
            }
            const int old = ring.set_color(Color::kRed);
            charge_queue_op();
            if (old == lockfree::kColorBusy) continue;
            if (old == static_cast<int>(Color::kRed))
                co_return;  // raced: someone else kicked
            break;  // we won the blue->red flip
        }
        ++stats_.kicks;
        if (kicked) *kicked = true;
        co_await dev_.ioctl_mov_one();
        co_return;
    }

    // Classic single shared deposit path: concurrent submitters from
    // different CPUs contend on the staging queue's tail CAS.
    dev_.kernel().cpu().charge(sim::ExecContext::kUser, sim::Op::kQueue,
                               dev_.shared_submit_penalty(cpu_id_));

    lockfree::RedBlueQueue staging = region_.staging_queue();
    lockfree::RedBlueQueue submission = region_.submission_queue();

    // The §4.4 protocol, verbatim: deposit in staging; the color
    // observed atomically with the enqueue says who flushes.
    const Color color = staging.enqueue(idx);
    charge_queue_op();
    if (color != Color::kBlue) co_return;  // kernel will flush (red)

    for (;;) {
        // Flush everything from staging to submission.
        for (;;) {
            const DequeueResult d = staging.dequeue();
            charge_queue_op();
            if (!d.ok) break;
            submission.enqueue(d.value);
            charge_queue_op();
            ++stats_.flush_moves;
        }
        // Hand the queue to the kernel. Failure = someone enqueued
        // behind us: flush again.
        const int old = staging.set_color(Color::kRed);
        charge_queue_op();
        if (old == lockfree::kColorBusy) continue;
        if (old == static_cast<int>(Color::kRed)) co_return;  // raced: kicked
        break;  // we won the blue->red flip
    }

    // Exactly one thread per idle period reaches this point (§4.4).
    ++stats_.kicks;
    if (kicked) *kicked = true;
    co_await dev_.ioctl_mov_one();
}

sim::Task
MemifUser::submit_many(const std::vector<std::uint32_t> &idxs, bool *kicked)
{
    if (kicked) *kicked = false;
    if (idxs.empty()) co_return;
    stats_.submits += idxs.size();
    ++stats_.batch_submits;

    const bool rings = region_.num_rings() > 0;
    const std::uint32_t r = rings ? my_ring() : 0;
    lockfree::RedBlueQueue deposit =
        rings ? region_.ring_queue(r) : region_.staging_queue();
    lockfree::RedBlueQueue submission = region_.submission_queue();

    if (!rings)
        dev_.kernel().cpu().charge(sim::ExecContext::kUser, sim::Op::kQueue,
                                   dev_.shared_submit_penalty(cpu_id_));

    // Deposit the whole batch first; any blue observation means flush
    // responsibility landed on us (at most once for the batch).
    bool saw_blue = false;
    for (const std::uint32_t idx : idxs) {
        MovReq &req = region_.request(idx);
        req.submit_time = dev_.kernel().eq().now();
        req.submit_cpu = cpu_id_;
        req.asid = asid_;
        if (!dev_.admit_request(idx)) {
            ++stats_.rejected;
            continue;
        }
        req.store_status(MovStatus::kSubmitted);
        dev_.kernel().tracer().record(req.submit_time,
                                      sim::TracePoint::kSubmit,
                                      sim::ExecContext::kUser, idx);
        const Color color = deposit.enqueue(idx);
        charge_queue_op();
        if (rings) ++dev_.stats_.ring_submits[r];
        if (color == Color::kBlue) saw_blue = true;
    }
    if (!saw_blue) co_return;  // kernel will flush (red)

    for (;;) {
        for (;;) {
            const DequeueResult d = deposit.dequeue();
            charge_queue_op();
            if (!d.ok) break;
            submission.enqueue(d.value);
            charge_queue_op();
            ++stats_.flush_moves;
        }
        const int old = deposit.set_color(Color::kRed);
        charge_queue_op();
        if (old == lockfree::kColorBusy) continue;
        if (old == static_cast<int>(Color::kRed)) co_return;  // raced
        break;
    }

    // One crossing for the whole batch; the worker drains the rest.
    ++stats_.kicks;
    if (kicked) *kicked = true;
    co_await dev_.ioctl_mov_one();
}

std::uint32_t
MemifUser::retrieve_completed()
{
    DequeueResult d = region_.completion_ok_queue().dequeue();
    charge_queue_op();
    if (!d.ok) {
        d = region_.completion_err_queue().dequeue();
        charge_queue_op();
    }
    if (!d.ok) {
        // Nothing pending: rearm the poll event.
        dev_.completion_event().reset();
        return kNoRequest;
    }
    ++stats_.completions;
    return d.value;
}

sim::Task
MemifUser::poll()
{
    ++stats_.polls;
    os::Kernel &k = dev_.kernel();
    // poll() is a syscall: charge the crossing and sleep on the device
    // file's wait queue until a notification is (or already was) posted.
    co_await k.cpu().busy(sim::ExecContext::kSyscall, sim::Op::kSyscall,
                          k.costs().poll_syscall);
    co_await dev_.completion_event().wait();
}

}  // namespace memif::core
