/**
 * @file
 * The reference model: a tiny sequential interpreter that applies a
 * workload's requests to plain byte arrays — no queues, no DMA, no
 * coroutines — and predicts (a) the final user-visible bytes of every
 * region and (b) the set of acceptable outcomes for each request.
 *
 * Why a *set* of outcomes: the four differential presets schedule the
 * same workload differently, so whether a racing CPU touch lands
 * before, during, or after a migration's copy window is genuinely
 * schedule-dependent. The model cannot (and should not) predict the
 * winner; instead it derives, from the workload structure alone, which
 * terminal statuses a correct driver may report:
 *
 *   migration   kDone always; kRaceDetected only under kDetect AND a
 *               same-phase touch overlaps its pages; kAborted only
 *               under kRecover ditto; kFailed(kNoMemory) always (node
 *               exhaustion / injected alloc fail); kFailed(kDmaError |
 *               kTimeout) only when faults are armed and the CPU-copy
 *               fallback is off.
 *   replication kDone always; kFailed(kDmaError | kTimeout) under the
 *               same fault condition. Never raced, never aborted.
 *   chained     a tiered preset routes SRAM↔far migrations through a
 *   migration   multi-hop chain (staged in DDR), but the terminal set
 *               is the plain migration set above: per-hop retries and
 *               the CPU-copy fallback absorb hop faults exactly like
 *               the single-hop ladder, an unrecoverable mid-chain hop
 *               rolls every page back (kFailed/kDmaError — covered by
 *               the fault clause), staging-pool pressure degrades to a
 *               direct hop rather than failing, and chained flights
 *               always block racing touches (never kRaceDetected /
 *               kAborted, which the set merely permits). Memory stays
 *               fully predicted: mid-chain bytes live in staging
 *               frames no PTE exposes.
 *   malformed   exactly kFailed(expected validation error).
 *   any         kFailed(kNoSpace) under multi_tenant presets only:
 *               admission backpressure strikes at submit, before
 *               validation (the runner retries instead of recording).
 *   valid       kFailed(kBusy) under auto_migrate presets only: the
 *               request collided with a device-originated daemon mov
 *               (the runner retries instead of recording).
 *
 * Memory, by contrast, IS fully predicted: migrations and touches are
 * content-inert under every policy and every outcome (raced, aborted,
 * rolled-back and successful migrations all preserve bytes), so only
 * replications change memory — and the workload generator gives
 * concurrent requests disjoint pages, making the bytes independent of
 * completion order. commit() applies a replication's copy iff the
 * driver reported kDone; after the run the regions must match the
 * model byte-for-byte.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "check/workload.h"
#include "memif/device.h"
#include "memif/mov_req.h"

namespace memif::check {

/** The initial fill byte for offset @p i of a region with pattern
 *  seed @p pattern. Must match the differential runner's fill. */
inline std::uint8_t
pat_byte(std::uint8_t pattern, std::uint64_t i)
{
    return static_cast<std::uint8_t>(pattern + i * 13);
}

/** Run-wide facts the allowed-outcome computation depends on. */
struct OutcomeContext {
    core::RacePolicy policy = core::RacePolicy::kDetect;
    /** Whether DMA/alloc fault injection is armed for the run. */
    bool faults_armed = false;
    /** MemifConfig::cpu_copy_fallback (on: DMA faults are absorbed). */
    bool cpu_copy_fallback = true;
    /** MemifConfig::multi_tenant: admission control may reject any
     *  request — malformed ones included, rejection precedes
     *  validation — with kFailed/kNoSpace. The differential runner
     *  treats a rejection with a positive retry_after_us as
     *  backpressure, not a terminal outcome: it waits out the hint and
     *  resubmits, so transient kNoSpace never reaches the exactly-once
     *  ledger and final memory stays preset-independent. A zero hint
     *  (frame estimate alone exceeds the quota) IS terminal — a failed
     *  request moves no memory, so the digests still converge. */
    bool multi_tenant = false;
    /** MemifConfig::auto_migrate: the heat scanner and migration
     *  daemon are live, so any valid request may collide with a
     *  device-originated daemon mov and fail fast with
     *  kFailed/kBusy. The runner treats that as transient (the
     *  daemon mov completes in bounded virtual time) and resubmits,
     *  but a terminal kBusy is admissible: the bounced request moved
     *  no memory, and the daemon's own migration is content-inert. */
    bool auto_migrate = false;
};

/** One flattened request. Its index in submission order is the
 *  request's user_tag in the differential runner. */
struct MovRecord {
    MovSpec spec;
    /** Index of the WorkloadOp that submits it. */
    std::size_t op_index = 0;
    /** Barrier-delimited phase the request runs in. */
    std::uint32_t phase = 0;
    /** Validation error a malformed request must report. */
    core::MovError expect_error = core::MovError::kNone;
    /** Migration only: a same-phase touch overlaps its pages, so
     *  race-policy outcomes are possible. */
    bool may_race = false;
};

class ReferenceModel {
  public:
    explicit ReferenceModel(const Workload &w);

    std::size_t num_movs() const { return movs_.size(); }
    const MovRecord &mov(std::size_t id) const { return movs_[id]; }

    /**
     * Is (@p st, @p err) an acceptable terminal outcome for request
     * @p id under @p ctx? On rejection, appends a human-readable
     * reason to @p why (if non-null).
     */
    bool outcome_allowed(std::size_t id, core::MovStatus st,
                         core::MovError err, const OutcomeContext &ctx,
                         std::string *why) const;

    /**
     * Apply request @p id's memory effect given the driver's reported
     * terminal status: a kDone replication copies bytes, everything
     * else is a no-op. Call once per retrieved completion.
     */
    void commit(std::size_t id, core::MovStatus st);

    /** Expected bytes of @p region right now. */
    const std::vector<std::uint8_t> &
    memory(std::uint32_t region) const
    {
        return mem_[region];
    }

  private:
    const Workload &w_;
    std::vector<MovRecord> movs_;
    std::vector<std::vector<std::uint8_t>> mem_;
};

/** Printable name of a MovStatus / MovError (diagnostics). */
const char *status_name(core::MovStatus st);
const char *error_name(core::MovError err);

}  // namespace memif::check
