/**
 * @file
 * The pseudo-NUMA abstraction tour (§6.1): what numactl/numastat see
 * once the heterogeneous memories are exposed as NUMA nodes — policy
 * allocation, synchronous move_pages(2), and per-node accounting —
 * i.e. everything that worked "for free" once the paper's NUMA port
 * was in place, and that memif then surpasses.
 *
 * Run: build/examples/numa_tour
 */
#include <cstdio>
#include <vector>

#include "os/kernel.h"
#include "os/numa.h"
#include "os/process.h"
#include "sim/types.h"

using namespace memif;

namespace {

void
print_numastat(os::Kernel &kernel, const char *when)
{
    std::printf("numastat (%s):\n", when);
    std::printf("  %-12s %10s %10s %10s %6s\n", "node", "total_kb",
                "used_kb", "free_kb", "fast");
    for (const os::NumaNodeStat &s : os::numa_stat(kernel)) {
        std::printf("  %-12s %10llu %10llu %10llu %6s\n", s.name.c_str(),
                    static_cast<unsigned long long>(s.total_bytes >> 10),
                    static_cast<unsigned long long>(s.used_bytes >> 10),
                    static_cast<unsigned long long>(s.free_bytes >> 10),
                    s.is_fast ? "yes" : "no");
    }
    std::printf("\n");
}

}  // namespace

int
main()
{
    os::Kernel kernel;
    os::Process &proc = kernel.create_process();
    print_numastat(kernel, "boot: SRAM visible as node 1, like the paper's "
                           "patched kernel");

    // mbind-style policies.
    const vm::VAddr def =
        os::numa_mmap(proc, 1 << 20, vm::PageSize::k4K, os::MemPolicy{});
    const vm::VAddr bound = os::numa_mmap(
        proc, 1 << 20, vm::PageSize::k4K,
        os::MemPolicy{os::NumaPolicy::kBind, {kernel.fast_node()}});
    const vm::VAddr inter = os::numa_mmap(
        proc, 1 << 20, vm::PageSize::k4K,
        os::MemPolicy{os::NumaPolicy::kInterleave,
                      {kernel.slow_node(), kernel.fast_node()}});
    std::printf("mmap 1 MB default   -> 0x%llx (DDR)\n",
                static_cast<unsigned long long>(def));
    std::printf("mmap 1 MB bind-fast -> 0x%llx (SRAM)\n",
                static_cast<unsigned long long>(bound));
    std::printf("mmap 1 MB interleave-> 0x%llx (alternating)\n\n",
                static_cast<unsigned long long>(inter));
    print_numastat(kernel, "after policy allocations");

    // move_pages(2): the synchronous machinery memif improves upon.
    std::vector<vm::VAddr> pages;
    std::vector<mem::NodeId> targets;
    for (int i = 0; i < 64; ++i) {
        pages.push_back(def + static_cast<vm::VAddr>(i) * 4096);
        targets.push_back(kernel.fast_node());
    }
    std::vector<int> status;
    const sim::SimTime t0 = kernel.eq().now();
    kernel.spawn(os::move_pages(proc, pages, targets, &status));
    kernel.run();
    int moved = 0;
    for (const int s : status)
        if (s == os::kPageMoved) ++moved;
    std::printf("move_pages(64 x 4KB -> fast): %d moved, %.1f us "
                "(synchronous, CPU copies)\n\n",
                moved, sim::to_us(kernel.eq().now() - t0));
    print_numastat(kernel, "after move_pages");

    std::printf("this is the baseline world of Section 2.2 — memif's\n"
                "asynchronous, DMA-driven service exists because this\n"
                "path is CPU-bound and synchronous.\n");
    return 0;
}
