/**
 * @file
 * A classic binary buddy allocator over a frame range, the analogue of
 * Linux's zoned page allocator that both the baseline migration path and
 * the memif driver allocate destination pages from.
 *
 * Frames are addressed by *local* index within the node. The allocator
 * detects double frees and frees of never-allocated blocks (they panic:
 * in this codebase such a call is always a library bug).
 */
#pragma once

#include <cstdint>
#include <set>
#include <vector>

namespace memif::mem {

class BuddyAllocator {
  public:
    /** Largest supported block: 2^kMaxOrder frames (4 MB at 4 KB). */
    static constexpr unsigned kMaxOrder = 10;
    static constexpr std::uint64_t kInvalidFrame = ~std::uint64_t{0};

    explicit BuddyAllocator(std::uint64_t num_frames);

    /**
     * Allocate a 2^order-frame block, naturally aligned.
     * @return the head frame index or kInvalidFrame when exhausted.
     */
    std::uint64_t allocate(unsigned order);

    /**
     * Allocate @p n naturally aligned 2^order-frame blocks in one call,
     * appending the head frames to @p out. All-or-nothing: when fewer
     * than @p n blocks can be carved out, no frame is allocated and the
     * call returns false with @p out untouched.
     */
    bool allocate_bulk(unsigned order, std::uint64_t n,
                       std::vector<std::uint64_t> &out);

    /** Free a block previously allocated with the same order. */
    void free(std::uint64_t head, unsigned order);

    std::uint64_t num_frames() const { return num_frames_; }
    std::uint64_t free_frames() const { return free_frames_; }

    /** Frames currently allocated and not yet freed. Leak check: at a
     *  quiesced point this must equal the frames a test knowingly
     *  holds — anything above that is a leaked block. */
    std::uint64_t outstanding_pages() const
    {
        return num_frames_ - free_frames_;
    }

    /** Free blocks currently held at @p order (diagnostic). */
    std::size_t free_blocks(unsigned order) const
    {
        return free_lists_[order].size();
    }

    /** True if a block of @p order could be allocated right now. */
    bool can_allocate(unsigned order) const;

    /**
     * True if @p n blocks of @p order could all be allocated right now.
     * Exact (counts whole blocks carvable at >= order, not just free
     * frames), so a true answer guarantees allocate_bulk(order, n)
     * succeeds with no intervening alloc/free.
     */
    bool can_allocate(unsigned order, std::uint64_t n) const;

    /** Alias of outstanding_pages() under the Linux-ish name used by
     *  leak-check tests. */
    std::uint64_t allocated_frames() const { return outstanding_pages(); }

  private:
    std::uint64_t buddy_of(std::uint64_t head, unsigned order) const
    {
        return head ^ (std::uint64_t{1} << order);
    }

    std::uint64_t num_frames_;
    std::uint64_t free_frames_ = 0;
    /** Free block heads per order; std::set keeps behaviour deterministic
     *  (lowest-address block is always handed out first). */
    std::vector<std::set<std::uint64_t>> free_lists_;
    /** Allocation order of each allocated head frame, +1 (0 = not a head). */
    std::vector<std::uint8_t> allocated_order_;
};

}  // namespace memif::mem
