/**
 * @file
 * Tests for the Linux page-migration baseline: functional correctness
 * (bytes and mappings move), cost structure vs. the paper's §2.2
 * numbers, race prevention through migration PTEs, and failure paths.
 */
#include "os/page_migration.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "os/kernel.h"
#include "os/process.h"
#include "sim/types.h"

namespace memif::os {
namespace {

void
fill_pattern(Process &p, vm::VAddr base, std::uint64_t bytes,
             std::uint8_t seed)
{
    std::vector<std::uint8_t> buf(bytes);
    for (std::uint64_t i = 0; i < bytes; ++i)
        buf[i] = static_cast<std::uint8_t>(seed + i * 31);
    ASSERT_TRUE(p.as().write(base, buf.data(), bytes));
}

bool
check_pattern(Process &p, vm::VAddr base, std::uint64_t bytes,
              std::uint8_t seed)
{
    std::vector<std::uint8_t> buf(bytes);
    if (!p.as().read(base, buf.data(), bytes)) return false;
    for (std::uint64_t i = 0; i < bytes; ++i)
        if (buf[i] != static_cast<std::uint8_t>(seed + i * 31)) return false;
    return true;
}

TEST(PageMigration, MovesBytesAndMappingsToFastNode)
{
    Kernel k;
    Process &p = k.create_process();
    const vm::VAddr base = p.mmap(16 * 4096, vm::PageSize::k4K);
    ASSERT_NE(base, 0u);
    fill_pattern(p, base, 16 * 4096, 7);

    MigrationResult res;
    k.spawn(migrate_pages_sync(p, base, 16, k.fast_node(), &res));
    k.run();

    EXPECT_EQ(res.pages_moved, 16u);
    EXPECT_EQ(res.pages_failed, 0u);
    EXPECT_EQ(res.bytes_moved, 16u * 4096);
    EXPECT_TRUE(check_pattern(p, base, 16 * 4096, 7));
    vm::Vma *vma = p.as().find_vma(base);
    for (std::uint64_t i = 0; i < 16; ++i) {
        const vm::Pte pte = vma->pte(i);
        EXPECT_TRUE(pte.present);
        EXPECT_FALSE(pte.migration);
        EXPECT_EQ(k.phys().node_of(pte.pfn), k.fast_node());
    }
    // Old frames must be back in the slow node's buddy.
    EXPECT_EQ(k.phys().node(k.slow_node()).free_frames(),
              k.phys().node(k.slow_node()).num_frames());
}

TEST(PageMigration, PerPageCostMatchesPaperSection22)
{
    // Paper 2.2: ~15 us of CPU per 4 KB page, ~4 us of which is copy;
    // observed throughput ~0.30 GB/s on the ARM platform.
    Kernel k;
    Process &p = k.create_process();
    const std::uint64_t npages = 1500;  // the paper's exact experiment
    const vm::VAddr base = p.mmap(npages * 4096, vm::PageSize::k4K);
    ASSERT_NE(base, 0u);

    const sim::SimTime t0 = k.eq().now();
    MigrationResult res;
    k.spawn(migrate_pages_sync(p, base, npages, k.fast_node(), &res));
    k.run();

    const double us_per_page =
        sim::to_us(res.completed_at - t0) / static_cast<double>(npages);
    EXPECT_GT(us_per_page, 12.0);
    EXPECT_LT(us_per_page, 17.0);

    const double gbps =
        sim::gb_per_sec(res.bytes_moved, res.completed_at - t0);
    EXPECT_GT(gbps, 0.24);
    EXPECT_LT(gbps, 0.36);  // paper: 0.30 GB/s

    const auto &acct = k.cpu().accounting();
    const double copy_us = sim::to_us(acct.op(sim::Op::kCopy)) /
                           static_cast<double>(npages);
    EXPECT_GT(copy_us, 3.0);
    EXPECT_LT(copy_us, 5.0);
    // The baseline is CPU-bound: virtually all elapsed time is CPU time.
    EXPECT_GT(static_cast<double>(acct.total) /
                  static_cast<double>(res.completed_at - t0),
              0.95);
}

TEST(PageMigration, LargePagesAreCopyDominated)
{
    Kernel k;
    Process &p = k.create_process();
    const vm::VAddr base = p.mmap(2ull << 20, vm::PageSize::k2M);
    ASSERT_NE(base, 0u);
    MigrationResult res;
    k.spawn(migrate_pages_sync(p, base, 1, k.fast_node(), &res));
    k.run();
    EXPECT_EQ(res.pages_moved, 1u);
    const auto &acct = k.cpu().accounting();
    EXPECT_GT(acct.op(sim::Op::kCopy), 8 * acct.op(sim::Op::kRemap));
    // ~2 GB/s streaming: 2 MB in ~1 ms.
    EXPECT_NEAR(sim::to_ms(res.completed_at), 1.0, 0.35);
}

TEST(PageMigration, SkipsUnmappedAndAlreadyResidentPages)
{
    Kernel k;
    Process &p = k.create_process();
    const vm::VAddr base = p.mmap(4 * 4096, vm::PageSize::k4K,
                                  k.fast_node());  // already fast
    MigrationResult res;
    k.spawn(migrate_pages_sync(p, base, 4, k.fast_node(), &res));
    k.run();
    EXPECT_EQ(res.pages_moved, 0u);
    EXPECT_EQ(res.pages_failed, 4u);

    MigrationResult res2;
    k.spawn(migrate_pages_sync(p, 0xDEAD0000, 3, k.fast_node(), &res2));
    k.run();
    EXPECT_EQ(res2.pages_failed, 3u);
}

TEST(PageMigration, FailsPagesWhenDestinationExhausted)
{
    Kernel k;
    Process &p = k.create_process();
    // 8 MB cannot fit in the 6 MB SRAM node.
    const std::uint64_t npages = (8ull << 20) / 4096;
    const vm::VAddr base = p.mmap(npages * 4096, vm::PageSize::k4K);
    ASSERT_NE(base, 0u);
    MigrationResult res;
    k.spawn(migrate_pages_sync(p, base, npages, k.fast_node(), &res));
    k.run();
    EXPECT_EQ(res.pages_moved, (6ull << 20) / 4096);
    EXPECT_EQ(res.pages_failed, npages - (6ull << 20) / 4096);
}

TEST(PageMigration, AccessorBlocksDuringMigrationThenProceeds)
{
    Kernel k;
    Process &p = k.create_process();
    const vm::VAddr base = p.mmap(64 * 4096, vm::PageSize::k4K);
    fill_pattern(p, base, 64 * 4096, 3);

    MigrationResult res;
    TouchOutcome touch_out;
    bool touched = false;

    // Start the migration, then have a "second thread" touch a page in
    // the middle of the range shortly after the syscall begins.
    auto toucher = [&]() -> sim::Task {
        co_await p.touch(base + 48 * 4096, true, &touch_out);
        touched = true;
    };
    k.spawn(migrate_pages_sync(p, base, 64, k.fast_node(), &res));
    k.eq().schedule_at(sim::microseconds(40),
                       [&] { k.spawn(toucher()); });
    k.run();

    EXPECT_TRUE(touched);
    EXPECT_EQ(res.pages_moved, 64u);
    // The toucher hit either a migration PTE (blocked >= 1) or a page
    // not yet remapped (ok); with page 48 at ~40 us into a ~15 us/page
    // walk it is still unremapped — so instead touch must simply have
    // completed without corruption. Verify data integrity regardless.
    EXPECT_TRUE(check_pattern(p, base, 64 * 4096, 3));
}

TEST(PageMigration, BlockedAccessorWaitsForRelease)
{
    Kernel k;
    Process &p = k.create_process();
    const vm::VAddr base = p.mmap(4096, vm::PageSize::k4K);
    vm::Vma *vma = p.as().find_vma(base);

    // Manually install a migration PTE, as Remap does.
    vm::Pte pte = vma->pte(0);
    pte.migration = true;
    vma->pte_slot(0).store(pte.pack(), std::memory_order_release);

    TouchOutcome out;
    bool done = false;
    auto toucher = [&]() -> sim::Task {
        co_await p.touch(base, false, &out);
        done = true;
    };
    k.spawn(toucher());
    k.run_until(sim::microseconds(100));
    EXPECT_FALSE(done);  // parked

    // Release: clear the bit and wake, as the baseline's step 4 does.
    pte.migration = false;
    vma->pte_slot(0).store(pte.pack(), std::memory_order_release);
    k.migration_waitq().notify_all();
    k.run();
    EXPECT_TRUE(done);
    EXPECT_EQ(out.blocked, 1u);
    EXPECT_EQ(out.result, vm::AccessResult::kOk);
}

TEST(PageMigration, BatchingSharesOneSyscallCost)
{
    // Two runs moving 64 pages: 8 syscalls of 8 pages vs 1 syscall of
    // 64 pages. The batched one must be faster by roughly 7x the
    // per-syscall overhead.
    auto run_batched = [](std::uint64_t per_call,
                          std::uint64_t calls) -> sim::Duration {
        Kernel k;
        Process &p = k.create_process();
        const vm::VAddr base =
            p.mmap(per_call * calls * 4096, vm::PageSize::k4K);
        auto driver = [&]() -> sim::Task {
            for (std::uint64_t c = 0; c < calls; ++c) {
                MigrationResult res;
                co_await migrate_pages_sync(p, base + c * per_call * 4096,
                                            per_call, k.fast_node(), &res);
            }
        };
        k.spawn(driver());
        k.run();
        return k.eq().now();
    };
    const sim::Duration many = run_batched(8, 8);
    const sim::Duration one = run_batched(64, 1);
    EXPECT_LT(one, many);
    const sim::CostModel cm;
    EXPECT_NEAR(static_cast<double>(many - one),
                7.0 * static_cast<double>(cm.syscall_crossing +
                                          cm.syscall_setup),
                1000.0);
}

}  // namespace
}  // namespace memif::os
