/**
 * @file
 * The memif kernel driver (paper §3, §5): one MemifDevice per opened
 * instance, owned by one process.
 *
 * The driver serves mov_reqs through three execution paths (§5.4,
 * Fig. 5):
 *
 *  - *Syscall path*: ioctl(MOV_ONE) runs in the caller's context,
 *    performs Prep/Remap/DMA-config for ONE queued request and returns
 *    to userspace the moment the transfer starts.
 *  - *Interrupt path*: the DMA completion interrupt performs Release and
 *    Notify immediately (possible only because race *detection* frees
 *    Release from sleepable locks, §5.2) and wakes the kernel thread.
 *  - *Kernel-thread path*: the worker drains the submission and staging
 *    queues without any userspace involvement. For small requests
 *    (< poll_threshold_bytes, 512 KB in the paper) it disables the DMA
 *    interrupt and sleeps until the predicted completion, then performs
 *    Release/Notify itself; large requests stay interrupt-driven. When
 *    everything is drained it colors the staging queue blue and sleeps.
 *
 * Race handling is configurable (§5.2):
 *  - kDetect ("proceed and fail", the default): Remap installs the
 *    semi-final PTE (young set); Release clears young with a CAS; a
 *    failed CAS reports the race to the application (the simulation's
 *    analogue of the SIGSEGV).
 *  - kRecover ("proceed and recover"): a custom fault handler catches
 *    the racing access, rolls the whole migration back (old PTEs
 *    restored, DMA dropped), and delivers an "aborted" notification.
 *  - kPrevent: the Linux-style migration PTE; accessors block, Release
 *    must run in the kernel thread (never in the interrupt handler).
 *
 * DMA error recovery: every interrupt-mode transfer is supervised by a
 * watchdog armed at its predicted duration × watchdog_margin (+ slack);
 * polled transfers are supervised inline by the kernel thread's wait.
 * A TC bus error or a watchdog expiry first retries the transfer (up to
 * dma_max_retries, exponential backoff), then degrades to a CPU
 * byte-copy of the scatter-gather list, and — only if the fallback is
 * disabled — rolls a migration back to its old frames (extending the
 * §5.2 abort machinery) and fails the request with kDmaError/kTimeout.
 * Error completions move no bytes, so destinations are all-or-nothing.
 */
#pragma once

#include <array>
#include <cstdint>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "dma/driver.h"
#include "memif/completion_ctl.h"
#include "memif/heat_policy.h"
#include "memif/mov_req.h"
#include "memif/shared_region.h"
#include "memif/xlate_cache.h"
#include "os/kernel.h"
#include "os/process.h"
#include "sim/sync.h"
#include "sim/task.h"
#include "vm/vma.h"

namespace memif::core {

/** Injection site: new-frame allocation during migration remap fails
 *  as if the destination node were exhausted (see sim/fault.h). */
inline constexpr std::string_view kFaultAllocFail = "memif.alloc_fail";

/** Injection site: an SVA-routed descriptor's consumption-time page
 *  walk faults (IOMMU walk error), terminating the chain mid-stream
 *  and feeding the recovery ladder with kXlateFault. */
inline constexpr std::string_view kFaultSvaWalk = "memif.sva_walk";

/** Race-handling policy (§5.2). */
enum class RacePolicy : std::uint8_t {
    kDetect = 0,  ///< proceed and fail (memif default)
    kRecover,     ///< proceed and recover (abort + rollback)
    kPrevent,     ///< Linux-style migration PTE (ablation baseline)
};

/** Per-instance configuration; defaults reproduce the paper's memif. */
struct MemifConfig {
    std::uint32_t capacity = SharedRegion::kDefaultCapacity;
    /** §5.1 gang page lookup (off = per-page walks, Table 1 baseline). */
    bool gang_lookup = true;
    /** §5.2 race handling. */
    RacePolicy race_policy = RacePolicy::kDetect;
    /** §5.4: below this size the kernel thread polls instead of taking
     *  the completion interrupt. */
    std::uint64_t poll_threshold_bytes = 512 * 1024;
    /**
     * Migrate file-backed (page-cache) pages. Off by default — the
     * paper's prototype "can only move anonymous pages" (§6.7) and
     * reports kFileBacked; on, the driver relocates the page-cache
     * frame along with every mapping (implemented future work).
     */
    bool allow_file_backed = false;
    /**
     * @name DMA error recovery.
     * The watchdog deadline is the transfer's remaining predicted time
     * × margin, plus a fixed slack absorbing interrupt latency. On a
     * TC error or expiry the driver retries with exponential backoff
     * (retry n sleeps backoff << (n-1)), then falls back to a CPU
     * byte-copy; with the fallback disabled the request fails instead
     * (migrations roll back to their old frames).
     */
    ///@{
    double watchdog_margin = 4.0;
    sim::Duration watchdog_slack = sim::microseconds(20);
    std::uint32_t dma_max_retries = 3;
    sim::Duration dma_retry_backoff = sim::microseconds(5);
    bool cpu_copy_fallback = true;
    ///@}
    /**
     * @name Throughput-pipeline levers (off by default so the paper-
     * reproduction figures keep their exact shapes; pipelined() turns
     * all three on for the "memif-pipelined" bench series).
     */
    ///@{
    /** Merge physically contiguous old->new runs into one variable-
     *  size SG entry each (the buddy allocator routinely returns
     *  adjacent frames), cutting PaRAM descriptor writes. */
    bool sg_coalescing = false;
    /** Load-balance chains across the engine's six transfer
     *  controllers and keep every transfer interrupt-driven, so the
     *  kernel thread Prep/Remap/configures request N+1 while N is
     *  still copying. */
    bool multi_tc_dispatch = false;
    /** Accumulate Remap's PTE updates and issue one ranged TLB flush
     *  per (address space, vma) per request instead of a broadcast
     *  per page. */
    bool batched_tlb_shootdown = false;
    ///@}

    /**
     * @name Completion-batching levers (this PR; off by default so the
     * paper-reproduction figures keep their exact shapes; moderated()
     * turns them on atop pipelined() for the "memif-moderated" series).
     */
    ///@{
    /** Hold completion IRQs in the engine's per-TC moderation batch:
     *  one coalesced IRQ retires up to moderation_batch chains (or
     *  whatever finished within moderation_holdoff of the first). */
    bool irq_moderation = false;
    /** Overrides for the cost model's moderation parameters (0 = keep
     *  the cost-model default). */
    std::uint32_t moderation_batch = 0;
    sim::Duration moderation_holdoff = 0;
    /** Multi-request completion drain: the first handler of a coalesced
     *  IRQ claims every completed interrupt-mode transfer and retires
     *  them in one pass — one IRQ-entry charge, one kthread wakeup, and
     *  (under kPrevent) one shared ranged TLB shootdown. */
    bool completion_drain = false;
    /** EWMA-driven hybrid polling: replace the static
     *  poll_threshold_bytes rule with CompletionController, which
     *  learns per-size completion times online and switches each
     *  transfer between polled / interrupt / moderated-interrupt. */
    bool adaptive_polling = false;
    /** Smoothing factor for the controller's EWMAs. */
    double ewma_alpha = 0.25;
    ///@}

    /**
     * @name Submission-path levers (this PR; off by default so the
     * paper-reproduction figures keep their exact shapes; scaled()
     * turns them on atop moderated() for the "memif-scaled" series).
     */
    ///@{
    /** Gang translation cache: cache (vma, range) -> walk results in
     *  the driver, invalidated through the AddressSpace hook, so
     *  repeated moves over hot regions skip the radix walk. */
    bool xlate_cache = false;
    /** On a miss, walk (and cache) this many extra pages beyond the
     *  requested run — the gang-prefetch of the next translations. */
    std::uint32_t xlate_prefetch = 8;
    /** Cache capacity in (vma, range) entries. */
    std::uint32_t xlate_cache_entries = 64;
    /** Bulk frame allocation: fill a per-(node, order) free-frame
     *  magazine (Linux pcp-list analogue) with one Buddy::allocate_bulk
     *  call per refill instead of one allocator round trip per page;
     *  released/rolled-back frames return to the magazine in batch. */
    bool bulk_alloc = false;
    /** Blocks fetched per magazine refill (floor; a gang needing more
     *  gets exactly what it needs). */
    std::uint32_t magazine_refill = 32;
    /** Frames parked per magazine before frees spill to the buddy. */
    std::uint32_t magazine_capacity = 128;
    /** Per-CPU submission rings: one red-blue deposit ring per
     *  simulated CPU plus a sharded flight table, so concurrent
     *  clients never contend on submit. */
    bool percpu_rings = false;
    /** Rings to format (capped at kMaxSubmitRings). */
    std::uint32_t num_submit_cpus = 4;
    ///@}

    /**
     * @name Multi-tenant service layer (this PR; off by default —
     * single-tenant behaviour is byte-identical with the lever off;
     * tenanted() turns it on atop scaled() for the preset matrix).
     */
    ///@{
    /** Serve several address spaces (ASIDs) through one instance:
     *  per-tenant admission quotas, weighted round-robin dispatch, and
     *  bounded per-tenant queues with load shedding under pressure. */
    bool multi_tenant = false;
    /** Per-tenant cap on requests between admission and the terminal
     *  notification; 0 = unlimited. Exceeding it rejects the submit
     *  with kNoSpace and a retry-after hint. */
    std::uint32_t tenant_inflight_quota = 32;
    /** Per-tenant cap on transient 4 KB frames held by in-flight
     *  migrations (the doubled-frame window); 0 = unlimited. */
    std::uint64_t tenant_frame_quota = 4096;
    /** Bound on a tenant's dispatched-but-unserved queue, scaled by its
     *  weight; excess is shed with kNoSpace. 0 = unbounded. */
    std::uint32_t tenant_queue_depth = 64;
    /** WRR weight given to tenants registered without an explicit one
     *  (and to the owning process, tenant 0). */
    std::uint32_t tenant_default_weight = 1;
    /** Cap on requests dispatched to the engines at once; further
     *  backlog waits in the per-tenant pending lists where the WRR
     *  can re-rank it. 0 = unbounded — overload then drains straight
     *  into the FIFO TC queues, whose bandwidth sharing ignores
     *  tenant weights. A bit above the engine's 6 TCs keeps the
     *  hardware fed without flooding it. */
    std::uint32_t tenant_dispatch_window = 8;
    ///@}

    /**
     * @name MMU-aware DMA levers (this PR; off by default so every
     * earlier series keeps its exact shape; mmu_aware() turns them on
     * atop tenanted() for the "memif-mmu-aware" series).
     */
    ///@{
    /** Translation prefetch ahead of TC consumption: walk only the
     *  first prefetch_window descriptors synchronously at chain prep,
     *  then issue asynchronous translation-prefetch walks (EventQueue
     *  events at page-walk cost) that run ahead of the consumption
     *  stream, so walks overlap in-flight DMA instead of serialising
     *  before submit. The TC-side consumer stalls (counted) only when
     *  it outruns the prefetcher. Effective on SVA-routed streams
     *  (sva_dma), where translation actually happens at consumption. */
    bool xlate_prefetch_ahead = false;
    /** Descriptors walked synchronously at prep; also the batch size
     *  of each asynchronous prefetch walk. */
    std::uint32_t prefetch_window = 8;
    /** SVA-routed DMA (IOMMU-SVA framing): replication streams drop
     *  the pre-pinned physical SG contract — the engine resolves each
     *  descriptor through the per-tenant XlateCache / page walk at
     *  consumption time. Walk miss = engine stall + demand walk;
     *  invalidation mid-flight = re-walk; a descriptor whose pages
     *  went away faults the chain (kXlateFault) into the recovery
     *  ladder. Never stale bytes: the gate always resolves from the
     *  live page tables — cache state only decides the stall charged. */
    bool sva_dma = false;
    ///@}

    /**
     * @name Managed-mode levers (this PR; off by default so every
     * earlier series keeps its exact shape; managed() turns
     * auto_migrate on atop mmu_aware() for the "memif-managed"
     * series). With auto_migrate on, a periodic scan kthread samples
     * access heat from the young/dirty bits of regions registered via
     * manage_region(), and a migration daemon kthread turns policy
     * verdicts into device-originated movs (hot buckets to the fast
     * node, cold buckets back to the slow one). Sampling and migration
     * both happen off the fault path; a failed daemon mov is dropped
     * (cooldown), never retried synchronously.
     */
    ///@{
    /** Master switch for the scan + daemon kthreads. */
    bool auto_migrate = false;
    /** Placement policy sub-lever (aging vs. EWMA; heat_policy.h). */
    MigratePolicy migrate_policy = MigratePolicy::kAging;
    /** Scan epoch: the interval between heat-sampling passes. */
    sim::Duration heat_scan_interval = sim::microseconds(500);
    /** Per-bucket adaptive dormancy (DAMON-style): after this many
     *  consecutive epochs in which a bucket's observation matched its
     *  settled classification (hot and fully touched, or cold and
     *  untouched) the scanner stops sampling it. Its pages stay
     *  unarmed, so the app pays no access-flag traps and the scan pays
     *  no walk for it; one probe epoch re-arms, the next re-evaluates,
     *  and a matching probe doubles the sleep. 0 disables settling. */
    std::uint32_t heat_settle_epochs = 4;
    /** Longest sleep (in scan epochs) a settled bucket may take; also
     *  bounds how stale a settled verdict can get. */
    std::uint32_t heat_dormant_cap = 16;
    /** Pages per heat bucket (the migration unit). */
    std::uint32_t heat_bucket_pages = 8;
    /** Per-epoch cap on daemon-migrated pages (promotions+demotions). */
    std::uint32_t migrate_pages_per_epoch = 64;
    /** kAging promote/demote thresholds (hysteresis band between). */
    std::uint8_t heat_promote_threshold = 0x60;
    std::uint8_t heat_demote_threshold = 0x10;
    /** kEwma decay factor and hot-enter / cold-exit bands. */
    double heat_ewma_alpha = 0.4;
    double heat_hot_enter = 0.6;
    double heat_cold_exit = 0.2;
    /** WRR weight of the daemon's dedicated service class (its movs
     *  never consume app tenants' quotas). */
    std::uint32_t daemon_weight = 1;
    /** Engine-backlog backoff: the daemon stops issuing when this many
     *  requests are already in flight (so it never starves apps). */
    std::uint32_t daemon_backlog_limit = 6;
    /** Scanner parks after this many consecutive epochs with no
     *  accessed page and no daemon work (woken by device activity). */
    std::uint32_t scan_idle_park_epochs = 2;
    ///@}

    /**
     * @name Tiered-memory levers (this PR; off by default — the device
     * then never looks at the far node and every earlier series keeps
     * its exact shape; tiered() turns them on atop managed() for the
     * "memif-tiered" series). With tiered_memory on (and a far node
     * built, KernelConfig::far_bytes), a migration whose endpoints are
     * the non-adjacent SRAM/far pair is *chained*: staged through DDR
     * in bounded batches, each hop its own DMA chain with its own
     * retry / CPU-fallback ladder, behind blocking migration PTEs.
     * pipelined_eviction lets up to tiered_max_batches batches run
     * concurrently with their hops out of order across TCs (batch
     * k+1's DDR→far hop overlaps batch k's SRAM→DDR hop); off, the
     * chain runs store-and-forward, one stage at a time.
     */
    ///@{
    bool tiered_memory = false;
    bool pipelined_eviction = false;
    /** Pages (of the request's order) per chained batch — the
     *  pipelining grain. */
    std::uint32_t tiered_batch_pages = 16;
    /** Concurrent in-flight batches per chain (bounds staging demand
     *  and the out-of-order window). */
    std::uint32_t tiered_max_batches = 4;
    /** Cap on middle-tier staging frames (4 KB) leased across all
     *  chains; a batch that cannot get its frames waits for a peer's
     *  release. Single batches larger than the cap borrow past it
     *  alone (progress guarantee). */
    std::uint32_t staging_pool_pages = 128;
    /** Third hysteresis band for the three-way hot/warm/cold daemon
     *  verdict (tiered_memory only; the two-way bands above are
     *  untouched). kAging: a bucket enters cold at/below
     *  heat_cold_threshold and leaves at/above heat_warm_threshold;
     *  kEwma: enters at/below heat_far_enter, leaves at/above
     *  heat_far_exit. Cold buckets demote to the far tier; warm ones
     *  stop at DDR. */
    std::uint8_t heat_cold_threshold = 0x02;
    std::uint8_t heat_warm_threshold = 0x08;
    double heat_far_enter = 0.05;
    double heat_far_exit = 0.12;
    ///@}

    /**
     * @name Strided-DMA lever (this PR; off by default — requests with
     * strided geometry are then rejected at validation and every
     * earlier series keeps its exact shape; strided() turns it on atop
     * tiered() for the "memif-strided" series). With strided_dma on,
     * a replication may carry 2D geometry (rows × row_bytes with
     * independent src/dst pitches, or a gather list of per-row source
     * addresses): the driver emits EDMA3 A/B-count descriptors for
     * pitch-uniform page-interior runs, splits rows at page boundaries
     * on either side, and routes the result through the same SG /
     * SVA-gate / recovery machinery as flat moves (the CPU fallback
     * copies row-by-row, so layouts survive degradation intact).
     */
    ///@{
    bool strided_dma = false;
    ///@}

    /** All three pipeline levers on (the "memif-pipelined" series). */
    static MemifConfig
    pipelined()
    {
        MemifConfig c;
        c.sg_coalescing = true;
        c.multi_tc_dispatch = true;
        c.batched_tlb_shootdown = true;
        return c;
    }

    /** pipelined() plus the completion-batching levers (the
     *  "memif-moderated" series). */
    static MemifConfig
    moderated()
    {
        MemifConfig c = pipelined();
        c.irq_moderation = true;
        c.completion_drain = true;
        c.adaptive_polling = true;
        return c;
    }

    /** moderated() plus the submission-path levers (the "memif-scaled"
     *  series). */
    static MemifConfig
    scaled()
    {
        MemifConfig c = moderated();
        c.xlate_cache = true;
        c.bulk_alloc = true;
        c.percpu_rings = true;
        return c;
    }

    /** scaled() plus the multi-tenant service layer (the
     *  "memif-tenanted" series). */
    static MemifConfig
    tenanted()
    {
        MemifConfig c = scaled();
        c.multi_tenant = true;
        return c;
    }

    /** tenanted() plus the MMU-aware DMA levers (the "memif-mmu-aware"
     *  series). */
    static MemifConfig
    mmu_aware()
    {
        MemifConfig c = tenanted();
        c.sva_dma = true;
        c.xlate_prefetch_ahead = true;
        return c;
    }

    /** mmu_aware() plus managed mode (the "memif-managed" series). */
    static MemifConfig
    managed()
    {
        MemifConfig c = mmu_aware();
        c.auto_migrate = true;
        return c;
    }

    /** managed() plus the third tier and pipelined multi-hop eviction
     *  (the "memif-tiered" series). Inert unless the kernel was built
     *  with KernelConfig::far_bytes != 0. */
    static MemifConfig
    tiered()
    {
        MemifConfig c = managed();
        c.tiered_memory = true;
        c.pipelined_eviction = true;
        return c;
    }

    /** tiered() plus layout-flexible strided/gather descriptors (the
     *  "memif-strided" series). */
    static MemifConfig
    strided()
    {
        MemifConfig c = tiered();
        c.strided_dma = true;
        return c;
    }
};

/** Per-tenant accounting (multi_tenant lever; all zero otherwise). */
struct TenantStats {
    std::uint32_t weight = 1;
    std::uint64_t admitted = 0;       ///< requests past admission
    std::uint64_t completed = 0;      ///< terminal notifications
    std::uint64_t rejected = 0;       ///< admission rejections (kNoSpace)
    std::uint64_t shed = 0;           ///< dropped at dispatch (queue bound)
    std::uint64_t bytes_moved = 0;
    std::uint64_t pages_moved = 0;
    /** Starvation tripwire: worst submit-to-service wait observed. */
    sim::Duration max_slot_wait = 0;
    /** Requests currently charged against the in-flight quota. */
    std::uint32_t outstanding = 0;
    /** Transient 4 KB frames currently charged against the quota. */
    std::uint64_t frames_charged = 0;
};

/** Driver event counters. */
struct DeviceStats {
    std::uint64_t requests_completed = 0;
    std::uint64_t replications = 0;
    std::uint64_t migrations = 0;
    std::uint64_t pages_moved = 0;
    std::uint64_t bytes_moved = 0;
    std::uint64_t validation_failures = 0;
    std::uint64_t races_detected = 0;
    std::uint64_t migrations_aborted = 0;
    std::uint64_t kick_ioctls = 0;
    std::uint64_t irq_completions = 0;
    std::uint64_t polled_completions = 0;
    /** Notifications sent to the kernel thread. Historically this only
     *  counted notifies that found the thread asleep; it now counts
     *  every notify and the two components are split out below. */
    std::uint64_t kthread_wakeups = 0;
    std::uint64_t wakeups_from_sleep = 0;     ///< thread was sleeping
    std::uint64_t notifies_while_running = 0; ///< thread already draining
    /** Completion-drain passes that retired >1 request. */
    std::uint64_t completion_drains = 0;
    /** Requests retired inside someone else's drain pass. */
    std::uint64_t drained_requests = 0;
    /** Transfers started with a moderated completion IRQ. */
    std::uint64_t moderated_dispatches = 0;
    /** Moderated completions the kernel thread retired directly from
     *  the flight table, cancelling the held IRQ before it fired. */
    std::uint64_t reaped_completions = 0;
    /** Adaptive-controller decisions (mirrors CompletionController). */
    std::uint64_t adaptive_polled = 0;
    std::uint64_t adaptive_irq = 0;
    std::uint64_t adaptive_moderated = 0;
    std::uint64_t dma_errors = 0;         ///< TC-error completions seen
    std::uint64_t dma_retries = 0;        ///< transfers restarted
    std::uint64_t fallback_copies = 0;    ///< degraded to CPU byte-copy
    std::uint64_t watchdog_timeouts = 0;  ///< stuck / lost-irq detections
    std::uint64_t rollbacks = 0;          ///< unrecoverable-failure rollbacks
    std::uint64_t sg_entries_emitted = 0;  ///< SG entries sent to the DMA
    /** Descriptor writes avoided by contiguous-run coalescing. */
    std::uint64_t descriptor_writes_saved = 0;
    /** Transfers triggered per transfer controller. */
    std::array<std::uint64_t, dma::Edma3Engine::kNumTcs> tc_dispatches{};
    std::uint64_t ranged_tlb_flushes = 0;  ///< batched-shootdown flushes
    // ----- Submission path (gang xlate cache / magazine / rings) ------
    std::uint64_t xlate_hits = 0;    ///< pages translated from the cache
    std::uint64_t xlate_misses = 0;  ///< pages that paid the radix walk
    std::uint64_t xlate_invalidations = 0;  ///< entries dropped by the hook
    /** Extra pages walked by the *reactive* gang-prefetch (cache-miss
     *  neighbour expansion). Distinct from the ahead-of-stream prefetch
     *  counters below, which this field historically conflated. */
    std::uint64_t xlate_gang_prefetched = 0;
    std::uint64_t bulk_allocs = 0;     ///< magazine refills (bulk calls)
    std::uint64_t magazine_pops = 0;   ///< frames handed out of a magazine
    std::uint64_t magazine_spills = 0; ///< frees past capacity, to buddy
    /** Requests deposited per submission ring. */
    std::array<std::uint64_t, kMaxSubmitRings> ring_submits{};
    /** Shared-queue submit CAS retries charged (contention model). */
    std::uint64_t shared_submit_retries = 0;
    // ----- Multi-tenant service layer ---------------------------------
    std::uint64_t admission_rejections = 0;  ///< submits refused outright
    std::uint64_t quota_hits_inflight = 0;   ///< ... at the request quota
    std::uint64_t quota_hits_frames = 0;     ///< ... at the frame quota
    std::uint64_t shed_requests = 0;   ///< dropped at the queue-depth bound
    std::uint64_t wrr_dispatches = 0;  ///< requests picked by the WRR
    // ----- MMU-aware DMA (ahead-of-stream prefetch / SVA routing) -----
    /** Descriptors covered by an issued translation prefetch (the sync
     *  window plus every scheduled asynchronous walk). */
    std::uint64_t stream_prefetch_issued = 0;
    /** Gate found the prefetched translation ready and live (zero
     *  consumption-time stall). */
    std::uint64_t stream_prefetch_hits = 0;
    /** Consumer outran the prefetcher: the covering walk was still in
     *  flight, so the TC stalled until it landed. */
    std::uint64_t stream_prefetch_late = 0;
    /** Prefetched translation unusable at consumption (invalidated
     *  after fill, or the fill itself was dropped). */
    std::uint64_t stream_prefetch_wasted = 0;
    /** Prefetch fills discarded by the generation check (invalidation
     *  landed between issue and fill). */
    std::uint64_t prefetch_fills_dropped = 0;
    /** TC-side consumer stalls (late prefetch) and their total time. */
    std::uint64_t consumer_stalls = 0;
    sim::Duration consumer_stall_time = 0;
    /** SVA-routed descriptors resolved through the MMU at consumption. */
    std::uint64_t sva_resolved = 0;
    /** ... that paid a demand walk in the stream (cache miss). */
    std::uint64_t sva_demand_walks = 0;
    /** ... whose translation changed since prep (descriptor rewritten
     *  from the live PTEs before the copy). */
    std::uint64_t sva_retranslated = 0;
    /** Consumption-time walk faults (chain terminated, kXlateFault). */
    std::uint64_t sva_faults = 0;
    // ----- Managed mode (heat scan + migration daemon) ----------------
    std::uint64_t heat_scans = 0;           ///< scan epochs executed
    std::uint64_t heat_pages_sampled = 0;   ///< PTEs examined by the scanner
    std::uint64_t heat_pages_accessed = 0;  ///< ... found touched (young clear)
    std::uint64_t heat_pages_written = 0;   ///< ... found dirty
    /** Pages skipped because an in-flight request overlapped them. */
    std::uint64_t heat_pages_skipped = 0;
    std::uint64_t promotions_issued = 0;    ///< daemon movs toward fast memory
    std::uint64_t promotions_completed = 0;
    std::uint64_t demotions_issued = 0;     ///< daemon movs toward slow memory
    std::uint64_t demotions_completed = 0;
    /** Daemon movs that failed (any reason) and were absorbed: the
     *  bucket enters a cooldown instead of being retried on a fault. */
    std::uint64_t daemon_movs_dropped = 0;
    /** Daemon issue passes cut short by the engine-backlog backoff. */
    std::uint64_t daemon_busy_backoffs = 0;
    /** Daemon issue passes cut short by the per-epoch page budget. */
    std::uint64_t daemon_budget_exhausted = 0;
    /** Promotions skipped because the fast node could not fit them. */
    std::uint64_t promotions_skipped_full = 0;
    // ----- Tiered memory (third tier + chained multi-hop eviction) ----
    std::uint64_t chained_migrations = 0;  ///< movs staged through DDR
    std::uint64_t chain_batches = 0;       ///< bounded batches executed
    std::uint64_t hop_stages_issued = 0;   ///< per-hop DMA stages started
    std::uint64_t hop_stages_completed = 0;
    std::uint64_t hop_retries = 0;         ///< hop attempts past the first
    std::uint64_t hop_fallback_copies = 0; ///< hops degraded to CPU copy
    /** A hop stage started while another was still in flight — the
     *  cross-TC out-of-order overlap the pipeline exists for (always 0
     *  with pipelined_eviction off). */
    std::uint64_t hop_overlap_events = 0;
    std::uint64_t chain_rollbacks = 0;     ///< chains failed, remap undone
    std::uint64_t staging_frames_hwm = 0;  ///< staging-pool high-water
    std::uint64_t staging_pool_waits = 0;  ///< batches that waited for frames
    std::uint64_t demotions_to_far = 0;    ///< daemon movs targeting far
    std::uint64_t promotions_from_far = 0; ///< daemon movs leaving far
    // ----- Strided DMA (2D descriptors + gather) ----------------------
    std::uint64_t strided_requests = 0;    ///< strided movs served
    std::uint64_t gather_requests = 0;     ///< ... whose source was a gather
    std::uint64_t strided_rows_moved = 0;  ///< rows delivered (all requests)
    /** Rows that crossed a page boundary on either side and were split
     *  into multiple flat segments (layout/paging interaction census). */
    std::uint64_t strided_row_splits = 0;
    /** SG entries that carried 2D geometry (rows folded into one
     *  A/B-count descriptor instead of per-row entries). */
    std::uint64_t strided_descriptors = 0;
};

class MemifDevice {
  public:
    /**
     * Create (open) a memif instance for @p proc. The shared region is
     * allocated and conceptually mapped into the process.
     */
    MemifDevice(os::Kernel &kernel, os::Process &proc,
                MemifConfig config = {});
    ~MemifDevice();
    MemifDevice(const MemifDevice &) = delete;
    MemifDevice &operator=(const MemifDevice &) = delete;

    os::Kernel &kernel() { return kernel_; }
    os::Process &owner() { return proc_; }
    SharedRegion &region() { return region_; }
    const MemifConfig &config() const { return config_; }
    const DeviceStats &stats() const { return stats_; }

    /**
     * @name Tenancy (multi_tenant lever).
     * The owning process is tenant 0, registered implicitly; every
     * further address space joins through register_tenant(). A
     * MemifUser bound to the returned ASID then submits against that
     * tenant's page tables, quotas, and WRR weight.
     */
    ///@{
    /** Register @p proc as a tenant; @p weight 0 takes the config
     *  default. Returns the new ASID. */
    std::uint32_t register_tenant(os::Process &proc,
                                  std::uint32_t weight = 0);
    /** Retune one tenant's WRR weight (takes effect on the next pick). */
    void set_tenant_weight(std::uint32_t asid, std::uint32_t weight);
    /** Registered tenants (0 with the lever off). */
    std::uint32_t num_tenants() const
    {
        return static_cast<std::uint32_t>(tenants_.size());
    }
    const TenantStats &tenant_stats(std::uint32_t asid) const;
    /**
     * Starvation tripwire: max/min completed bytes across tenants that
     * were admitted at least once. 1.0 is perfect fairness; a starved
     * tenant (admitted but zero bytes moved) yields +infinity. Fewer
     * than two participating tenants report 1.0.
     */
    double fairness_ratio() const;
    ///@}

    /**
     * Admission control (multi_tenant): charge @p idx against its
     * tenant's quotas. On rejection the request is completed
     * immediately as kFailed/kNoSpace with a retry-after hint and
     * false is returned — the caller must not deposit it. Always
     * admits with the lever off.
     */
    bool admit_request(std::uint32_t idx);

    /** Print the driver counters (and per-tenant table) to @p out. */
    void print_stats(std::FILE *out) const;
    /** The adaptive completion controller (test/diag introspection). */
    const CompletionController &completion_controller() const
    {
        return completion_ctl_;
    }

    /**
     * The MOV_ONE ioctl (§4.2): dequeue one request from the submission
     * queue and run the driver for it, returning as the DMA starts.
     * Runs in the calling process's context.
     */
    sim::Task ioctl_mov_one();

    /** Signalled whenever a completion notification is posted; backs
     *  the device file's poll() support. */
    sim::SimEvent &completion_event() { return completion_event_; }

    /** True when no request is anywhere between submit and notify. */
    bool idle() const;

    /**
     * Debug quiesce check: verifies every driver invariant that must
     * hold once the instance has gone idle —
     *
     *  - the flight table (and every per-CPU flight shard) is empty and
     *    no deferred release is pending;
     *  - the staging, submission, and per-CPU ring queues are drained;
     *  - no request slot is stuck in kSubmitted / kInFlight;
     *  - every DMA descriptor lease has been returned to the chain
     *    cache (no leaked PaRAM entries);
     *  - every frame parked in a bulk-alloc magazine is a real,
     *    allocated, unmapped frame and no magazine exceeds its cap;
     *  - every surviving gang-translation-cache entry still matches
     *    the live page tables (eager invalidation did its job).
     *
     * @param why when non-null, receives a human-readable description
     *        of every violated invariant.
     * @return true when fully quiesced. Call it from test teardown and
     *         from the differential runner after each workload.
     */
    bool check_quiesced(std::string *why = nullptr) const;

    /** Total 4 KB frames currently parked in bulk-alloc magazines.
     *  Parked frames stay "allocated" in PhysicalMemory terms, so the
     *  frame-accounting invariant at quiesce is
     *  outstanding_pages == baseline + magazine_pages(). */
    std::uint64_t magazine_pages() const;

    /**
     * @name Managed mode (auto_migrate lever).
     * Registering a region hands its placement to the device: the scan
     * kthread samples its young/dirty bits every heat_scan_interval and
     * the migration daemon moves hot buckets to the fast node and cold
     * ones back. The region (its Vma) must stay mapped until
     * unmanage_region() or device teardown, whichever comes first.
     */
    ///@{
    /**
     * Manage the region whose Vma starts at @p base in @p asid's
     * address space (ASID 0 = the owner; others via register_tenant).
     * No-op without auto_migrate. Returns false when the address does
     * not resolve to a Vma (or the lever is off).
     */
    bool manage_region(vm::VAddr base, std::uint32_t asid = 0);
    /** Stop managing the region at @p base (in-flight daemon movs for
     *  it finish and are then discarded). */
    void unmanage_region(vm::VAddr base, std::uint32_t asid = 0);
    std::size_t managed_region_count() const { return managed_.size(); }
    /** Hot-state flips within the ping-pong window, summed over all
     *  managed regions (placement-stability tripwire). */
    std::uint64_t heat_ping_pongs() const;
    /** Dump each managed region's heat histogram (8 score octiles) —
     *  also triggered by print_stats when MEMIF_HEAT_HISTOGRAM is set. */
    void print_heat_histogram(std::FILE *out) const;
    ///@}

  private:
    friend class MemifUser;

    /** One PTE mapping a migrating page (shared pages have several). */
    struct Mapping {
        vm::AddressSpace *as = nullptr;
        vm::Vma *vma = nullptr;
        std::uint64_t page_idx = 0;
        std::uint64_t old_pte = 0;  ///< packed pre-move PTE
    };

    /** A page-cache reference to a migrating page (file-backed). */
    struct CacheRef {
        vm::FileBacking *backing = nullptr;
        std::uint64_t file_page = 0;
    };

    /** One SVA-routed descriptor's virtual span: what the engine's
     *  translation gate re-resolves through the live page tables at
     *  consumption time (sva_dma replication streams only). */
    struct XlateSlot {
        vm::VAddr src_va = 0;
        vm::VAddr dst_va = 0;
        std::uint64_t bytes = 0;
        /** When the covering prefetch walk completes (prefetch-ahead
         *  only; 0 = no prefetch covers this slot). */
        sim::SimTime ready_at = 0;
        bool prefetched = false;
    };

    /** Per-page state of one request being served. */
    struct InFlight {
        std::uint32_t req_idx = 0;
        MovOp op = MovOp::kReplicate;
        vm::Vma *vma = nullptr;          ///< migration: region's vma
        std::uint64_t first_page = 0;    ///< migration: first page index
        std::uint32_t num_pages = 0;
        unsigned order = 0;
        std::uint64_t page_bytes = 0;
        std::uint64_t total_bytes = 0;
        std::vector<mem::Pfn> old_pfns;  ///< migration: replaced frames
        std::vector<mem::Pfn> new_pfns;  ///< migration: new frames
        std::vector<std::uint64_t> old_ptes;  ///< source-view PTEs
        /** Migration: every mapping of every page, via the rmap chains
         *  (index 0 per page is the caller's own mapping). */
        std::vector<std::vector<Mapping>> mappings;
        /** Migration: page-cache reference per page (backing == nullptr
         *  for anonymous pages). */
        std::vector<CacheRef> cache_refs;
        dma::TransferId tid = dma::kInvalidTransfer;
        bool aborted = false;            ///< recover-mode rollback done
        /** Depositing CPU (per-CPU rings: the flight-table shard). */
        std::uint32_t submit_cpu = 0;
        /** Scatter-gather list, kept for retries and the CPU fallback. */
        std::vector<dma::SgEntry> sg;
        bool irq_mode = false;           ///< completion via interrupt
        bool moderated = false;          ///< IRQ held in the TC batch
        /** Retired (or being retired) by a completion-drain pass; the
         *  transfer's own on_dma_complete must then do nothing. Reset
         *  on every (re)start so retries are supervised normally. */
        bool completion_claimed = false;
        std::uint32_t dma_attempts = 0;  ///< starts so far (1 = first)
        sim::SimTime dma_start_at = 0;   ///< trigger time of the attempt
        sim::Duration predicted = 0;     ///< engine quote for fl->sg
        sim::EventQueue::EventId watchdog_id = sim::EventQueue::kInvalidEvent;
        /** Tenant the request (and its frame charge) belongs to. */
        std::uint32_t asid = 0;
        /** Daemon-originated (managed mode): frame charges go to the
         *  daemon's service class, not the target tenant's quota. */
        bool daemon = false;
        /** Chained multi-hop migration (tiered_memory): the copy is
         *  staged through the middle tier by run_chain instead of one
         *  DMA. tid stays kInvalidTransfer on the master record, so
         *  the drain / reap / watchdog machinery never claims it; the
         *  per-hop stages supervise themselves. */
        bool chained = false;
        /** Chain failure latch: set by the first batch whose hop
         *  ladder ran dry; sibling batches then stop starting hops. */
        bool chain_failed = false;
        /** Transient 4 KB frames charged to the tenant's quota; zeroed
         *  when the charge is returned (release or rollback). */
        std::uint64_t frames_charged = 0;
        /** Replication destination region (SVA gate re-resolution). */
        vm::Vma *dst_vma = nullptr;
        /** SVA-routed stream: one entry per descriptor in fl->sg.
         *  Empty = pre-pinned transfer (no gate installed). */
        std::vector<XlateSlot> slots;
        /** Next prefetch batch to issue (stream prefetcher cursor). */
        std::uint64_t next_prefetch_batch = 0;
        /** Outstanding prefetch-fill events (cancelled at retire). */
        std::vector<sim::EventQueue::EventId> prefetch_events;
        /** Pending-prefetch tokens registered with the xlate cache
         *  (drained at retire so no pending entry outlives the move). */
        std::vector<std::uint64_t> prefetch_tokens;
    };
    using InFlightPtr = std::shared_ptr<InFlight>;

    /** Whether @p fl migrates behind blocking migration PTEs (Linux
     *  style) rather than the §5.2 semi-final protocol. True under the
     *  kPrevent race policy — and for every daemon flight regardless
     *  of policy: the semi-final PTE exposes the not-yet-copied new
     *  frame to readers and silently loses raced writes, which is the
     *  submitting app's accepted contract for its own movs but can
     *  never be imposed on an app by the transparent migration daemon.
     *  A daemon mov may delay an access; it must never corrupt one —
     *  and for every chained flight: mid-chain the data lives in
     *  staging frames no PTE ever points at, so the semi-final
     *  protocol has no frame to expose. Chained moves always block
     *  accessors until the last hop lands. */
    bool flight_prevents(const InFlight &fl) const
    {
        return fl.daemon || fl.chained ||
               config_.race_policy == RacePolicy::kPrevent;
    }

    /** One (address space, vma) span of PTEs dirtied since the last
     *  TLB flush; the batched-shootdown accumulator (PR 2's Remap
     *  version, now also shared across requests by the drain paths). */
    struct FlushSpan {
        vm::AddressSpace *as = nullptr;
        vm::Vma *vma = nullptr;
        std::uint64_t lo = 0, hi = 0;  ///< page-index range
    };
    using FlushPlan = std::vector<FlushSpan>;
    /** Widen (or open) @p plan's span for (@p as, @p vma) to cover
     *  @p page_idx. */
    static void accumulate_flush(FlushPlan &plan, vm::AddressSpace *as,
                                 vm::Vma *vma, std::uint64_t page_idx);
    /** Issue one ranged invalidation per span; adds the flush time to
     *  @p cost and bumps the ranged-flush counter. */
    void issue_flush_plan(const FlushPlan &plan, sim::Duration &cost);

    /** Ops 1-3 for one request; on success the DMA is running and
     *  @p out (if given) receives the in-flight record. @p moderated
     *  asks for a moderated completion IRQ (irq_mode only). */
    sim::Task serve_request(std::uint32_t idx, sim::ExecContext ctx,
                            bool irq_mode, InFlightPtr *out = nullptr,
                            bool moderated = false);
    /** Ops 4-5. With @p shared_plan, a kPrevent migration's release
     *  accumulates its TLB work there instead of flushing per page —
     *  the caller issues one ranged shootdown for the whole batch. */
    sim::Task do_release(InFlightPtr fl, sim::ExecContext ctx,
                         FlushPlan *shared_plan = nullptr);
    /** Interrupt handler body for one completed transfer. */
    sim::Task irq_complete(InFlightPtr fl);
    /** Completion-drain handler: claims every completed interrupt-mode
     *  transfer synchronously (so sibling callbacks of a coalesced IRQ
     *  bail out) and retires them all under one IRQ-entry charge and
     *  one kthread wakeup. */
    sim::Task drain_completions(InFlightPtr first);

    sim::Task reap_moderated();
    /** Feed a finished first-attempt transfer to the EWMA controller. */
    void observe_completion(const InFlightPtr &fl);
    /** The worker (§5.4 kernel-thread path). */
    sim::Task kthread_loop();
    void wake_kthread();

    /** Validation of one user-supplied request (§4.2 safety). */
    MovError validate(const MovReq &req, vm::Vma **src_vma,
                      vm::Vma **dst_vma) const;
    /** Validation of a strided/gather request (rows != 0). */
    MovError validate_strided(const MovReq &req, vm::Vma **src_vma,
                              vm::Vma **dst_vma) const;

    /** Post a completion notification (op 5). */
    void notify(std::uint32_t idx, MovStatus status, MovError error);

    /** Recover-mode fault hook: true if the access hit an in-flight
     *  migration that was rolled back. */
    bool handle_young_fault(vm::Vma &vma, std::uint64_t page_idx);
    /** Roll back an in-flight migration (recover policy). */
    void abort_migration(const InFlightPtr &fl);

    // ----- DMA error recovery -----------------------------------------
    /** Start (or restart) @p fl's transfer; arms the watchdog in irq
     *  mode. The prepared chain must match fl->sg. */
    void trigger_dma(const InFlightPtr &fl, dma::DmaDriver::Prepared p,
                     sim::ExecContext ctx);
    /** Completion-interrupt dispatcher: routes to irq_complete or, on a
     *  TC error, into the recovery ladder. */
    sim::Task on_dma_complete(InFlightPtr fl);
    void arm_watchdog(const InFlightPtr &fl);
    void disarm_watchdog(const InFlightPtr &fl);
    /** Watchdog callback: decides stuck vs. lost-interrupt and feeds
     *  the recovery ladder. */
    sim::Task watchdog_expired(InFlightPtr fl);
    /** The recovery ladder: retry w/ backoff → CPU copy → rollback. */
    sim::Task handle_dma_failure(InFlightPtr fl, sim::ExecContext ctx,
                                 MovError reason);
    /** Re-prepare and re-trigger fl->sg after backoff. */
    sim::Task restart_dma(InFlightPtr fl, sim::ExecContext ctx);
    /** Degraded path: copy fl->sg with the CPU, then Release/Notify. */
    sim::Task fallback_copy(InFlightPtr fl, sim::ExecContext ctx);
    /** No recovery left: roll back (migrations) and fail the request. */
    void fail_unrecoverable(const InFlightPtr &fl, sim::ExecContext ctx,
                            MovError reason);
    /** Restore old PTEs and free new frames (shared by abort_migration
     *  and fail_unrecoverable). */
    void rollback_remap(const InFlightPtr &fl, sim::ExecContext ctx);

    // ----- Tiered memory (chained multi-hop eviction) -----------------
    /** Shared state of one chain: the batch-join counter the master
     *  blocks on, plus the wait queue batches signal through. */
    struct ChainState {
        explicit ChainState(sim::EventQueue &eq) : join(eq) {}
        sim::WaitQueue join;
        std::uint32_t batches_left = 0;
    };
    using ChainStatePtr = std::shared_ptr<ChainState>;
    /** Middle (staging) node for a chained move between @p src and
     *  @p dst, or kInvalidNode when the endpoints are adjacent (the
     *  move then runs single-hop exactly as before). Non-adjacency is
     *  read off the SLIT distances: a pair is chained when some third
     *  node is strictly closer to both endpoints than they are to
     *  each other. */
    mem::NodeId chain_mid_node(mem::NodeId src, mem::NodeId dst) const;
    /** The chain master (spawned where single-hop moves trigger their
     *  DMA): splits @p fl into bounded batches, runs them pipelined
     *  (or store-and-forward), then releases the migration — or rolls
     *  the whole remap back if any batch ran its ladder dry. */
    sim::Task run_chain(InFlightPtr fl, mem::NodeId mid);
    /** One batch: staging acquire → hop 1 (old→staging) → hop 2
     *  (staging→new) → staging release; decrements cs->batches_left
     *  and notifies the master when done. */
    sim::Task run_chain_batch(InFlightPtr fl, ChainStatePtr cs,
                              mem::NodeId mid, std::uint32_t first,
                              std::uint32_t count);
    /** One hop stage: its own DMA chain on a load-balanced TC,
     *  self-supervised (completion event + timeout, no watchdog /
     *  flight-table machinery), with the retry → CPU-copy ladder.
     *  Sets *ok false when the ladder ran dry. */
    sim::Task run_hop(InFlightPtr fl, const std::vector<dma::SgEntry> *sg,
                      bool *ok);
    /** Lease @p pages' worth of staging frames (order-@p order blocks)
     *  on @p mid from the bounded pool, waiting for peers when the
     *  pool is saturated. False = the middle node itself is exhausted
     *  (the batch then fails; callers treat it like a dry ladder). */
    sim::Task staging_acquire(mem::NodeId mid, unsigned order,
                              std::uint32_t pages,
                              std::vector<mem::Pfn> *out, bool *ok);
    /** Return @p frames to the buddy and the pool; wakes waiters. */
    void staging_release(std::vector<mem::Pfn> &frames, unsigned order);

    // ----- Submission-path acceleration -------------------------------
    /** Re-record a released migration's final translations so the next
     *  move over the region hits the cache (write-through: the driver's
     *  own remap shootdown invalidated the entry mid-request). */
    void xlate_writethrough(const InFlightPtr &fl, sim::ExecContext ctx);
    /**
     * Hand out @p n 2^order frames on @p node from the magazine,
     * refilling it with one allocate_bulk call when short. Adds the
     * modeled time to @p cost. All-or-nothing: false = node exhausted
     * (popped frames are returned to the magazine, @p out untouched).
     */
    bool magazine_alloc(mem::NodeId node, unsigned order, std::uint32_t n,
                        std::vector<mem::Pfn> &out, sim::Duration &cost);
    /** Park a freed frame in its magazine (list-op cost) or spill it to
     *  the buddy (page_free cost) when the magazine is full. */
    void magazine_free(mem::Pfn head, unsigned order, sim::Duration &cost);
    /** Return every parked frame to the buddy (teardown). */
    void drain_magazines();
    /** Free one block on the lever-appropriate path. */
    void free_frames(mem::Pfn head, unsigned order, sim::Duration &cost);
    /** Register / retire an in-flight record (mirrors into the
     *  per-submit-CPU flight shard when rings are on). */
    void add_in_flight(const InFlightPtr &fl);
    void remove_in_flight(const InFlightPtr &fl);

    // ----- MMU-aware DMA (stream prefetch / SVA routing) --------------
    /** Resolve the span [@p va, @p va + @p bytes) of @p vma through the
     *  live PTEs. False when any page is absent / mid-migration or the
     *  resolved frames are not physically contiguous; otherwise @p out
     *  receives the physical byte address of @p va. */
    static bool resolve_span(const vm::Vma *vma, vm::VAddr va,
                             std::uint64_t bytes, std::uint64_t *out);
    /** Issue the asynchronous translation-prefetch walk for batch
     *  @p batch of @p fl's stream (prefetch_window descriptors): marks
     *  the slots' ready_at, registers pending-prefetch tokens, and
     *  schedules the fill at walker (not CPU) cost. */
    void issue_stream_prefetch(const InFlightPtr &fl, std::uint64_t batch);
    /** The engine's per-descriptor translation gate (sva_dma): always
     *  re-resolves @p d from the live page tables; prefetch / cache
     *  state only decides the stall charged. Keeps the prefetcher
     *  running ahead of the consumption stream. */
    dma::XlateVerdict sva_gate_check(const InFlightPtr &fl,
                                     std::uint32_t idx,
                                     dma::TransferDescriptor &d);
    /** Re-resolve @p fl->sg from the live page tables (retry-ladder
     *  restart and CPU fallback of an SVA-routed stream re-validate
     *  every prefetched translation before touching bytes). */
    void revalidate_stream(const InFlightPtr &fl);
    /** Cancel outstanding prefetch-fill events (retire / teardown). */
    void cancel_stream_prefetch(const InFlightPtr &fl);

    // ----- Multi-tenant service layer ---------------------------------
    /** One registered address space: its quotas, WRR state, and (when
     *  the xlate lever is on) a private gang translation cache, so the
     *  PR 4 sharding extends per ASID instead of adding locks. */
    struct Tenant {
        os::Process *proc = nullptr;
        /** Per-ASID translation cache (tenant 0 keeps the device-level
         *  xlate_cache_, so this stays null for it). */
        std::unique_ptr<XlateCache> xcache;
        /** Dispatched-but-unserved request indices (WRR input). */
        std::vector<std::uint32_t> pending;
        /** Smooth-WRR running credit. */
        std::int64_t wrr_credit = 0;
        TenantStats stats;
    };
    /** Tenant record for @p asid, or null (lever off / unknown ASID). */
    Tenant *tenant_for(std::uint32_t asid);
    const Tenant *tenant_for(std::uint32_t asid) const;
    /** The address space serving @p req (the owner's when the lever is
     *  off or the ASID is unknown — validation then rejects cleanly). */
    vm::AddressSpace &request_as(const MovReq &req) const;
    /** Per-ASID gang translation cache (null when the lever is off). */
    XlateCache *xlate_for(std::uint32_t asid);
    /** Drop (vma, range) from every tenant's cache (rmap chains may
     *  cross address spaces). */
    void invalidate_xlate(const vm::Vma *vma, std::uint64_t first,
                          std::uint64_t n);
    /** Charge / return a migration's transient frames against its
     *  tenant's quota (idempotent via fl->frames_charged). */
    void charge_frames(const InFlightPtr &fl);
    void uncharge_frames(const InFlightPtr &fl);
    /** Route every deposited index into its tenant's pending queue,
     *  shedding past the weight-scaled depth bound. */
    void route_to_pending(bool take_staging);
    /** Smooth weighted round-robin over the non-empty pending queues;
     *  false when all are empty. Records the slot-wait tripwire. */
    bool wrr_pick(std::uint32_t *out);
    /** Dequeue the next index to serve on either execution path:
     *  single-tenant order with the lever off, route + WRR with it on. */
    bool next_request(std::uint32_t *out, bool take_staging);
    /** Complete @p idx as kFailed/kNoSpace with a retry-after hint;
     *  @p permanent zeroes the hint, meaning the request can never be
     *  admitted under this tenant's quota and must not be retried. */
    void reject_no_space(std::uint32_t idx, Tenant &t,
                         bool permanent = false);
    /** Contention model for the single shared deposit queue: a second
     *  CPU depositing within queue_contention_window of another pays a
     *  CAS retry. Per-CPU rings never call this. */
    sim::Duration shared_submit_penalty(std::uint32_t cpu);

    // ----- Managed mode (heat scan + migration daemon) ----------------
    /** One region whose placement the device manages. */
    struct ManagedRegion {
        std::uint32_t asid = 0;
        vm::AddressSpace *as = nullptr;
        vm::Vma *vma = nullptr;
        RegionHeat heat;
        /** Bucket has a daemon mov in flight (no re-issue until done). */
        std::vector<bool> busy;
        /** Epochs left before a failed bucket may be retried. */
        std::vector<std::uint32_t> cooldown;
        /** Settled-classification streak (resets on any mismatch). */
        std::vector<std::uint32_t> streak;
        /** Dormancy countdown: while > 0 the bucket is not sampled. */
        std::vector<std::uint32_t> dormant;
        /** Last granted sleep length (doubles on matching probes). */
        std::vector<std::uint32_t> next_dorm;
        /** The epoch after a sleep only re-arms; its readings are
         *  artifacts of our own disarming, not app accesses. */
        std::vector<bool> probing;
        ManagedRegion(const HeatConfig &hc, std::uint32_t asid_,
                      vm::AddressSpace *as_, vm::Vma *vma_)
            : asid(asid_), as(as_), vma(vma_),
              heat(hc, vma_->num_pages()),
              busy(heat.num_buckets(), false),
              cooldown(heat.num_buckets(), 0),
              streak(heat.num_buckets(), 0),
              dormant(heat.num_buckets(), 0),
              next_dorm(heat.num_buckets(), 0),
              probing(heat.num_buckets(), false)
        {
        }
    };
    /** One outstanding daemon mov (keyed by request-slot index). */
    struct DaemonMov {
        vm::Vma *vma = nullptr;      ///< identifies the region (stable)
        std::uint64_t bucket = 0;
        bool promote = false;
        std::uint32_t pages = 0;
        bool to_far = false;         ///< demotion targeting the far tier
        bool from_far = false;       ///< promotion leaving the far tier
    };
    /** The HeatConfig snapshot regions are attached with. */
    HeatConfig heat_config() const;
    /** The periodic heat-sampling kthread (parks when idle). */
    sim::Task scan_loop();
    /** One synchronous sampling pass over every managed region; returns
     *  the modeled CPU cost and reports activity/work via the outs. */
    sim::Duration scan_epoch(bool *any_accessed, bool *has_work,
                             bool *still_hot);
    /** The migration daemon kthread: turns verdicts into movs. */
    sim::Task daemon_loop();
    /** One issue pass (demotions first, then promotions), bounded by
     *  the epoch budget and the engine-backlog backoff. */
    void daemon_issue_pass();
    /** Build + deposit one daemon mov for @p bucket of @p mr, bound
     *  for @p dst (fast/slow in two-tier mode; any node when tiered). */
    bool daemon_submit_bucket(ManagedRegion &mr, std::uint64_t bucket,
                              bool promote, mem::NodeId dst);
    /** Terminal handling of a daemon mov (diverted from notify()):
     *  recycle the slot, clear the bucket, count, wake the daemon. */
    void daemon_request_done(std::uint32_t idx, MovStatus status);
    /** Wake the scanner if it parked (device-activity signal). */
    void wake_scanner();
    /** True when [first, first+n) of @p vma overlaps an in-flight
     *  request's source or destination span. With @p daemon_only only
     *  daemon-originated flights count (app-side Prep gate); the
     *  scanner passes false so it never samples under ANY move. */
    bool page_run_in_flight(const vm::Vma *vma, std::uint64_t first,
                            std::uint64_t n, bool daemon_only = false);
    /** Does bucket @p b of @p mr currently live on the fast node? */
    bool bucket_resident_fast(const ManagedRegion &mr,
                              std::uint64_t bucket) const;
    /** Which tier bucket @p b of @p mr currently lives on (judged by
     *  the bucket's first page, like bucket_resident_fast). */
    HeatTier bucket_tier(const ManagedRegion &mr,
                         std::uint64_t bucket) const;
    /** True when the daemon places across three tiers (tiered_memory
     *  on AND the kernel actually built a far node). */
    bool daemon_tiered() const;

    os::Kernel &kernel_;
    os::Process &proc_;
    MemifConfig config_;
    /** Transfer controller this instance submits on. */
    unsigned tc_;
    SharedRegion region_;
    CompletionController completion_ctl_;
    sim::SimEvent completion_event_;
    sim::WaitQueue kthread_wq_;
    bool kthread_sleeping_ = false;
    /** The kernel thread holds a moderation mask while awake (NAPI). */
    bool kthread_masked_ = false;
    sim::Task kthread_task_;
    std::vector<InFlightPtr> in_flight_;
    /** Per-submit-CPU flight shards (percpu_rings only): the sharded
     *  flight table concurrent submitters touch without contending. */
    std::array<std::vector<InFlightPtr>, kMaxSubmitRings> flight_shards_;
    /** kPrevent: releases deferred from the interrupt handler. */
    std::vector<InFlightPtr> pending_release_;
    /** Gang translation cache (xlate_cache lever; null when off).
     *  Tenant 0's cache; further tenants carry their own. */
    std::unique_ptr<XlateCache> xlate_cache_;
    /** Tenant registry (multi_tenant only; index == ASID, entry 0 is
     *  the owning process). Empty with the lever off. */
    std::vector<Tenant> tenants_;
    /** Per-(node, order) free-frame magazines (bulk_alloc lever). */
    std::map<std::pair<mem::NodeId, unsigned>, std::vector<mem::Pfn>>
        magazines_;
    /** Round-robin cursor over the submission rings. */
    std::uint32_t ring_rr_ = 0;
    /** Shared-queue contention window state. */
    sim::SimTime last_shared_submit_ = 0;
    std::uint32_t last_shared_cpu_ = 0;
    bool have_shared_submit_ = false;
    bool stopping_ = false;
    // ----- Managed-mode state (auto_migrate only) ---------------------
    std::vector<std::unique_ptr<ManagedRegion>> managed_;
    sim::WaitQueue scan_wq_;
    sim::WaitQueue daemon_wq_;
    bool scan_parked_ = false;
    bool daemon_parked_ = false;
    std::uint32_t scan_quiet_epochs_ = 0;
    /** Pages the daemon may still move this epoch (scanner refills). */
    std::uint32_t daemon_budget_ = 0;
    /** Daemon movs between submission and terminal handling. */
    std::uint32_t daemon_outstanding_ = 0;
    /** Outstanding daemon movs by request-slot index. */
    std::map<std::uint32_t, DaemonMov> daemon_movs_;
    /** The daemon's dedicated service class: NOT in tenants_ (its index
     *  is no ASID); WRR and frame accounting special-case it. */
    Tenant daemon_tenant_;
    sim::Task scan_task_;
    sim::Task daemon_task_;
    // ----- Tiered-memory state (tiered_memory only) -------------------
    /** Staging frames (4 KB) currently leased from the middle-tier
     *  pool; must be zero at quiesce. */
    std::uint64_t staging_frames_out_ = 0;
    /** Batches waiting for the staging pool to drain. */
    sim::WaitQueue staging_wq_;
    /** Hop stages currently in flight (the overlap census). */
    std::uint32_t active_hop_stages_ = 0;
    /** Chain-master frames. Owned by the device (not kernel_.spawn) so
     *  teardown destroys every suspended batch/hop frame with the
     *  master — nothing kernel-owned can resume into a dead device.
     *  Finished masters are reaped lazily at the next chain launch. */
    std::vector<sim::Task> chain_tasks_;
    DeviceStats stats_;
};

}  // namespace memif::core
