/**
 * @file
 * Virtual memory areas.
 *
 * A Vma is an anonymous mapping with a fixed *page granularity* — 4 KB,
 * 64 KB or 2 MB, the three sizes the paper evaluates (Fig. 6/8). Its
 * PTEs live in the owning address space's radix page table; the Vma
 * resolves and caches the (stable) slot pointers at construction so
 * hot paths touch the atomic words directly.
 */
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "mem/phys.h"
#include "vm/file_backing.h"
#include "vm/page_size.h"
#include "vm/pte.h"

namespace memif::vm {

class AddressSpace;
class PageTable;

/** One anonymous mapping. */
class Vma {
  public:
    /**
     * Create a mapping over [base, base + num_pages * page_bytes),
     * resolving (and creating) its PTE slots in @p table.
     */
    Vma(AddressSpace *owner, VAddr base, std::uint64_t num_pages,
        PageSize psize, mem::NodeId node, PageTable &table);

    Vma(const Vma &) = delete;
    Vma &operator=(const Vma &) = delete;

    VAddr base() const { return base_; }
    std::uint64_t num_pages() const { return slots_.size(); }
    PageSize page_size() const { return psize_; }
    std::uint64_t bytes() const { return num_pages() * page_bytes(psize_); }
    VAddr end() const { return base_ + bytes(); }
    mem::NodeId home_node() const { return node_; }
    AddressSpace *owner() const { return owner_; }

    bool
    contains(VAddr va) const
    {
        return va >= base_ && va < end();
    }

    /** Index of the page containing @p va. */
    std::uint64_t
    page_index(VAddr va) const
    {
        return (va - base_) >> static_cast<unsigned>(psize_);
    }

    /** Virtual address of page @p idx. */
    VAddr
    page_vaddr(std::uint64_t idx) const
    {
        return base_ + idx * page_bytes(psize_);
    }

    /** The atomic PTE slot of page @p idx (lives in the page table). */
    PteSlot &pte_slot(std::uint64_t idx) { return *slots_.at(idx); }
    const PteSlot &pte_slot(std::uint64_t idx) const
    {
        return *slots_.at(idx);
    }

    /** Decoded PTE of page @p idx. */
    Pte
    pte(std::uint64_t idx) const
    {
        return Pte::unpack(slots_.at(idx)->load(std::memory_order_acquire));
    }

    /** True for file-backed mappings (paper §6.7). */
    bool is_file_backed() const { return backing_ != nullptr; }
    FileBacking *backing() const { return backing_; }
    /** First file page this Vma maps (file-backed only). */
    std::uint64_t file_page_offset() const { return file_page_offset_; }

    /** Attach file backing (set once, by AddressSpace::mmap_file). */
    void
    set_backing(FileBacking *backing, std::uint64_t file_page_offset)
    {
        backing_ = backing;
        file_page_offset_ = file_page_offset;
    }

  private:
    AddressSpace *owner_;
    VAddr base_;
    PageSize psize_;
    mem::NodeId node_;
    std::vector<PteSlot *> slots_;
    FileBacking *backing_ = nullptr;
    std::uint64_t file_page_offset_ = 0;
};

}  // namespace memif::vm
