/**
 * @file
 * Figure 5 reproduction: "An example execution of memif driver" — a
 * textual swim-lane timeline of the driver serving a short burst of
 * small migration requests across its three kernel contexts:
 *
 *   app/syscall lane: SubmitRequest, the single kick ioctl, ops 1-3 of
 *                     the first request
 *   irq lane:         Release(4) + Notify(5) of the kicked request
 *   kthread lane:     woken by the interrupt; serves the remaining
 *                     requests with the DMA interrupt off, sleeping
 *                     until each predicted completion (polled mode)
 *
 * Run: build/examples/driver_timeline
 */
#include <cstdio>
#include <string>

#include "memif/device.h"
#include "memif/user_api.h"
#include "os/kernel.h"
#include "os/process.h"
#include "sim/trace.h"

using namespace memif;

namespace {

int
lane_column(const sim::TraceRecord &r)
{
    switch (r.ctx) {
      case sim::ExecContext::kUser: return 0;
      case sim::ExecContext::kSyscall: return 1;
      case sim::ExecContext::kIrq: return 2;
      case sim::ExecContext::kKthread: return 3;
      default: return 0;
    }
}

}  // namespace

int
main()
{
    os::Kernel kernel;
    kernel.tracer().enable();
    os::Process &proc = kernel.create_process();
    core::MemifDevice device(kernel, proc);
    core::MemifUser mif(device);

    // Figure 5's shape: a few small requests submitted back to back.
    const vm::VAddr region = proc.mmap(3 * 16 * 4096, vm::PageSize::k4K);
    auto app = [&]() -> sim::Task {
        for (int i = 0; i < 3; ++i) {
            const std::uint32_t r = mif.alloc_request();
            core::MovReq &req = mif.request(r);
            req.op = core::MovOp::kMigrate;
            req.src_base = region + static_cast<vm::VAddr>(i) * 16 * 4096;
            req.num_pages = 16;
            req.dst_node = kernel.fast_node();
            co_await mif.submit(r);
        }
    };
    kernel.spawn(app());
    kernel.run();

    std::printf("Figure 5: memif driver execution timeline "
                "(3 requests x 16 x 4KB pages)\n");
    std::printf("ops: 1=prep 2=remap 3=dma-cfg 4=release 5=notify\n\n");
    std::printf("%-12s | %-16s %-16s %-16s %-16s\n", "time (us)", "app",
                "syscall path", "interrupt path", "kernel thread");
    for (int i = 0; i < 85; ++i) std::putchar('-');
    std::putchar('\n');

    for (const sim::TraceRecord &r : kernel.tracer().records()) {
        std::string cells[4];
        std::string label(sim::to_string(r.point));
        if (r.req != sim::TraceRecord::kNoTraceReq)
            label += " #" + std::to_string(r.req);
        cells[lane_column(r)] = label;
        std::printf("%12.2f | %-16s %-16s %-16s %-16s\n",
                    sim::to_us(r.time), cells[0].c_str(), cells[1].c_str(),
                    cells[2].c_str(), cells[3].c_str());
    }

    std::printf("\nnote how request #0 is served in the caller's syscall "
                "context and released\nby the interrupt handler, while "
                "requests #1/#2 are pulled by the kernel\nthread, which "
                "polls (interrupt off) for their short transfers — exactly\n"
                "the division of labour of Fig. 5 / Section 5.4.\n");
    return 0;
}
