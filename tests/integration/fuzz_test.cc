/**
 * @file
 * Randomized whole-system fuzz: two processes, shared and private
 * regions, a mapped file, and a stream of random memif operations
 * (valid moves, invalid requests, racing touches) under every race
 * policy. After each run the entire machine is checked for
 * consistency: every request accounted for, no frame leaked, every
 * mapping's reverse map intact, all data readable.
 */
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "memif/device.h"
#include "memif/user_api.h"
#include "os/kernel.h"
#include "os/process.h"
#include "os/tmpfs.h"
#include "sim/random.h"

namespace memif::core {
namespace {

/** Frame accounting + rmap + PTE coherence across the whole machine. */
void
check_machine_consistency(os::Kernel &kernel,
                          std::vector<os::Process *> &procs)
{
    mem::PhysicalMemory &pm = kernel.phys();
    // 1. Buddy accounting matches the allocated flags.
    for (mem::NodeId n = 0; n < pm.node_count(); ++n) {
        std::uint64_t allocated = 0;
        for (mem::Pfn p = pm.node(n).base_pfn();
             p < pm.node(n).base_pfn() + pm.node(n).num_frames(); ++p)
            if (pm.node(n).frame(p).allocated) ++allocated;
        ASSERT_EQ(allocated,
                  pm.node(n).num_frames() - pm.node(n).free_frames())
            << "node " << n;
    }
    // 2. Every present PTE points at an allocated frame whose rmap
    //    chain contains exactly that mapping.
    for (os::Process *proc : procs) {
        vm::AddressSpace &as = proc->as();
        for (vm::VAddr probe = 0x1000'0000ull; probe < 0x2000'0000ull;
             probe += 4096) {
            vm::Vma *vma = as.find_vma(probe);
            if (!vma) continue;
            probe = vma->end() - 4096;  // skip to vma end after checking
            for (std::uint64_t i = 0; i < vma->num_pages(); ++i) {
                const vm::Pte pte = vma->pte(i);
                if (!pte.present) continue;
                const mem::PageFrame &frame = pm.frame(pte.pfn);
                ASSERT_TRUE(frame.allocated);
                bool found = false;
                for (const mem::RmapEntry &re : frame.rmaps)
                    if (re.owner == &as &&
                        re.vaddr == vma->page_vaddr(i) &&
                        re.kind == mem::RmapKind::kAddressSpace)
                        found = true;
                ASSERT_TRUE(found) << "missing rmap";
            }
        }
    }
}

class Fuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Fuzz, RandomOperationMixStaysConsistent)
{
    sim::Rng rng(GetParam());
    os::Kernel kernel;
    os::Process &a = kernel.create_process();
    os::Process &b = kernel.create_process();
    std::vector<os::Process *> procs{&a, &b};

    const RacePolicy policy = static_cast<RacePolicy>(rng.next_below(3));
    MemifConfig cfg;
    cfg.race_policy = policy;
    cfg.allow_file_backed = rng.next_below(2) == 1;
    MemifDevice dev(kernel, a, cfg);
    MemifUser user(dev);

    os::TmpFs fs(kernel);
    os::TmpFs::File *file = fs.create("/tmp/fuzz", 16);

    // Regions: private anon (2 sizes), a shared anon region, the file.
    struct Region {
        vm::VAddr base;
        std::uint32_t pages;
        bool file_backed;
    };
    std::vector<Region> regions;
    regions.push_back({a.mmap(32 * 4096, vm::PageSize::k4K), 32, false});
    regions.push_back({a.mmap(8 * 65536, vm::PageSize::k64K), 8, false});
    {
        const vm::VAddr shared = a.mmap(16 * 4096, vm::PageSize::k4K);
        b.as().mmap_shared(*a.as().find_vma(shared));
        regions.push_back({shared, 16, false});
    }
    regions.push_back({a.as().mmap_file(*file, 0, 16), 16, true});
    for (const Region &r : regions) ASSERT_NE(r.base, 0u);

    std::uint32_t submitted = 0, completed = 0;
    std::map<MovError, int> errors;

    auto driver = [&]() -> sim::Task {
        for (int step = 0; step < 160; ++step) {
            const std::uint64_t dice = rng.next_below(100);
            if (dice < 45) {
                // Submit a migration of a random sub-range.
                const Region &r = regions[rng.next_below(regions.size())];
                const std::uint32_t idx = user.alloc_request();
                if (idx == kNoRequest) continue;
                MovReq &req = user.request(idx);
                req.op = MovOp::kMigrate;
                const std::uint32_t n = 1 + static_cast<std::uint32_t>(
                                                rng.next_below(r.pages));
                const std::uint32_t off = static_cast<std::uint32_t>(
                    rng.next_below(r.pages - n + 1));
                const vm::Vma *vma = a.as().find_vma(r.base);
                req.src_base =
                    r.base + off * vm::page_bytes(vma->page_size());
                req.num_pages = n;
                req.dst_node = rng.next_below(2) == 0
                                   ? kernel.fast_node()
                                   : kernel.slow_node();
                ++submitted;
                co_await user.submit(idx);
            } else if (dice < 60) {
                // Submit a replication between two private regions.
                const std::uint32_t idx = user.alloc_request();
                if (idx == kNoRequest) continue;
                MovReq &req = user.request(idx);
                req.op = MovOp::kReplicate;
                req.src_base = regions[0].base;
                req.dst_base = regions[2].base;
                req.num_pages = static_cast<std::uint32_t>(
                    1 + rng.next_below(16));
                ++submitted;
                co_await user.submit(idx);
            } else if (dice < 70) {
                // Deliberately malformed request.
                const std::uint32_t idx = user.alloc_request();
                if (idx == kNoRequest) continue;
                MovReq &req = user.request(idx);
                req.op = MovOp::kMigrate;
                req.src_base = 0xDEAD0000 + rng.next_below(1 << 20);
                req.num_pages = static_cast<std::uint32_t>(
                    rng.next_below(600));
                req.dst_node = static_cast<std::uint32_t>(
                    rng.next_below(4));
                ++submitted;
                co_await user.submit(idx);
            } else if (dice < 85) {
                // Touch memory, possibly racing an in-flight move.
                const Region &r = regions[rng.next_below(regions.size())];
                const vm::Vma *vma = a.as().find_vma(r.base);
                const vm::VAddr va =
                    r.base + rng.next_below(r.pages) *
                                 vm::page_bytes(vma->page_size());
                os::TouchOutcome out;
                co_await a.touch(va, rng.next_below(2) == 1, &out);
            } else {
                // Drain completions.
                for (;;) {
                    const std::uint32_t idx = user.retrieve_completed();
                    if (idx == kNoRequest) break;
                    ++errors[user.request(idx).error];
                    user.free_request(idx);
                    ++completed;
                }
            }
            co_await sim::Delay{kernel.eq(),
                                sim::microseconds(rng.next_below(60))};
        }
        // Final drain.
        while (completed < submitted) {
            const std::uint32_t idx = user.retrieve_completed();
            if (idx == kNoRequest) {
                co_await user.poll();
                continue;
            }
            ++errors[user.request(idx).error];
            user.free_request(idx);
            ++completed;
        }
    };
    auto task = driver();
    kernel.run();
    ASSERT_TRUE(task.done());
    task.rethrow_if_failed();

    // Every submitted request was answered; the device quiesced.
    EXPECT_EQ(completed, submitted);
    EXPECT_TRUE(dev.idle());
    // Only explainable errors occurred.
    for (const auto &[err, count] : errors) {
        const bool expected =
            err == MovError::kNone || err == MovError::kBadAddress ||
            err == MovError::kBadRequest || err == MovError::kBadNode ||
            err == MovError::kNoMemory || err == MovError::kRace ||
            err == MovError::kAborted || err == MovError::kBusy ||
            err == MovError::kFileBacked;
        EXPECT_TRUE(expected) << "error " << static_cast<int>(err);
    }
    // The whole machine is still coherent.
    check_machine_consistency(kernel, procs);
    // All data still readable through every region.
    std::vector<std::uint8_t> buf;
    for (const Region &r : regions) {
        const vm::Vma *vma = a.as().find_vma(r.base);
        buf.resize(r.pages * vm::page_bytes(vma->page_size()));
        EXPECT_TRUE(a.as().read(r.base, buf.data(), buf.size()));
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Fuzz,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55,
                                           89));

}  // namespace
}  // namespace memif::core
