/**
 * @file
 * Tests of the PR 4 submission-path levers: the gang translation cache
 * (hit/miss accounting and — critically — generation invalidation from
 * remap, munmap and the racing young-bit CAS), bulk frame allocation
 * through the per-node magazines (no leaked frames, rollback included),
 * and per-CPU submission rings. All levers default to off; the first
 * test pins that down.
 */
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "memif/device.h"
#include "memif/user_api.h"
#include "os/kernel.h"
#include "os/page_migration.h"
#include "os/process.h"
#include "sim/types.h"

namespace memif::core {
namespace {

constexpr std::uint32_t kPages = 64;
constexpr std::uint64_t kBytes = kPages * 4096ull;

/** Touch time landing inside the DMA window of a 64-page migration. */
constexpr sim::SimTime kMidFlight = sim::microseconds(300);

struct Fixture {
    os::Kernel kernel;
    os::Process &proc;
    MemifDevice dev;
    MemifUser user;

    explicit Fixture(MemifConfig mc)
        : proc(kernel.create_process()), dev(kernel, proc, mc), user(dev)
    {
    }

    ~Fixture()
    {
        // Every test must hand the driver back fully quiesced: no
        // in-flight records, leased descriptors, stuck slots, parked
        // frames unaccounted for, or stale xlate entries. Tests that
        // intentionally end mid-flight opt out via the flag.
        if (!check_quiesce_on_teardown) return;
        std::string why;
        EXPECT_TRUE(dev.check_quiesced(&why)) << "teardown: " << why;
    }

    /** Opt-out for tests that deliberately leave work in flight. */
    bool check_quiesce_on_teardown = true;

    static MemifConfig
    cached(RacePolicy policy = RacePolicy::kDetect)
    {
        MemifConfig mc;
        mc.capacity = 64;
        mc.race_policy = policy;
        mc.poll_threshold_bytes = 0;  // irq-driven: leaves a DMA window
        mc.xlate_cache = true;
        return mc;
    }

    std::uint32_t
    submit_migration(vm::VAddr src, std::uint32_t npages, mem::NodeId dst)
    {
        const std::uint32_t idx = user.alloc_request();
        EXPECT_NE(idx, kNoRequest);
        MovReq &req = user.request(idx);
        req.op = MovOp::kMigrate;
        req.src_base = src;
        req.num_pages = npages;
        req.dst_node = dst;
        kernel.spawn(user.submit(idx));
        return idx;
    }

    /** Submit a migration and run the machine to quiescence. */
    MovStatus
    migrate(vm::VAddr src, std::uint32_t npages, mem::NodeId dst)
    {
        const std::uint32_t idx = submit_migration(src, npages, dst);
        kernel.run();
        const MovStatus st = user.request(idx).load_status();
        user.free_request(idx);
        return st;
    }

    std::vector<std::uint8_t>
    checked_pattern(vm::VAddr base, std::uint64_t bytes, std::uint8_t salt)
    {
        std::vector<std::uint8_t> pattern(bytes);
        for (std::size_t i = 0; i < pattern.size(); ++i)
            pattern[i] = static_cast<std::uint8_t>(i * 13 + salt);
        EXPECT_TRUE(proc.as().write(base, pattern.data(), pattern.size()));
        return pattern;
    }

    void
    expect_intact(vm::VAddr base, const std::vector<std::uint8_t> &pattern)
    {
        std::vector<std::uint8_t> readback(pattern.size());
        ASSERT_TRUE(proc.as().read(base, readback.data(), readback.size()));
        EXPECT_EQ(readback, pattern);
    }

    void
    expect_on_node(vm::VAddr base, std::uint32_t npages, mem::NodeId node)
    {
        vm::Vma *vma = proc.as().find_vma(base);
        ASSERT_NE(vma, nullptr);
        for (std::uint64_t i = 0; i < npages; ++i)
            EXPECT_EQ(kernel.phys().node_of(vma->pte(i).pfn), node)
                << "page " << i;
    }
};

// --------------------------------------------------------------------
// Levers-off defaults.
// --------------------------------------------------------------------

TEST(SubmissionLevers, AllOffByDefaultAllOnInScaled)
{
    const MemifConfig def{};
    EXPECT_FALSE(def.xlate_cache);
    EXPECT_FALSE(def.bulk_alloc);
    EXPECT_FALSE(def.percpu_rings);

    const MemifConfig scaled = MemifConfig::scaled();
    EXPECT_TRUE(scaled.xlate_cache);
    EXPECT_TRUE(scaled.bulk_alloc);
    EXPECT_TRUE(scaled.percpu_rings);
    // scaled() stacks on the PR 3 completion-batching levers.
    const MemifConfig moderated = MemifConfig::moderated();
    EXPECT_EQ(scaled.irq_moderation, moderated.irq_moderation);
    EXPECT_EQ(scaled.completion_drain, moderated.completion_drain);
    EXPECT_EQ(scaled.adaptive_polling, moderated.adaptive_polling);
}

TEST(SubmissionLevers, DefaultConfigTouchesNoNewMachinery)
{
    Fixture f{MemifConfig{.capacity = 64}};
    EXPECT_EQ(f.dev.region().num_rings(), 0u);
    const vm::VAddr base = f.proc.mmap(kBytes, vm::PageSize::k4K);
    EXPECT_EQ(f.migrate(base, kPages, f.kernel.fast_node()),
              MovStatus::kDone);
    EXPECT_EQ(f.migrate(base, kPages, f.kernel.slow_node()),
              MovStatus::kDone);
    const DeviceStats &ds = f.dev.stats();
    EXPECT_EQ(ds.xlate_hits, 0u);
    EXPECT_EQ(ds.xlate_misses, 0u);
    EXPECT_EQ(ds.bulk_allocs, 0u);
    EXPECT_EQ(ds.magazine_pops, 0u);
    for (const std::uint64_t n : ds.ring_submits) EXPECT_EQ(n, 0u);
}

// --------------------------------------------------------------------
// Gang translation cache: hits and invalidation.
// --------------------------------------------------------------------

TEST(XlateCache, RepeatedRegionMovesHitAfterWriteThrough)
{
    Fixture f{Fixture::cached()};
    const vm::VAddr base = f.proc.mmap(kBytes, vm::PageSize::k4K);
    const auto pattern = f.checked_pattern(base, kBytes, 1);

    ASSERT_EQ(f.migrate(base, kPages, f.kernel.fast_node()),
              MovStatus::kDone);
    EXPECT_EQ(f.dev.stats().xlate_hits, 0u);
    EXPECT_EQ(f.dev.stats().xlate_misses, kPages);

    // The release write-through recorded the final (fast-node) PTEs:
    // the return trip translates entirely from the cache.
    ASSERT_EQ(f.migrate(base, kPages, f.kernel.slow_node()),
              MovStatus::kDone);
    EXPECT_EQ(f.dev.stats().xlate_hits, kPages);
    EXPECT_EQ(f.dev.stats().xlate_misses, kPages);
    f.expect_intact(base, pattern);
    f.expect_on_node(base, kPages, f.kernel.slow_node());
}

TEST(XlateCache, MunmapInvalidatesAndRemapStartsCold)
{
    Fixture f{Fixture::cached()};
    const vm::VAddr base = f.proc.mmap(kBytes, vm::PageSize::k4K);
    ASSERT_EQ(f.migrate(base, kPages, f.kernel.fast_node()),
              MovStatus::kDone);

    f.proc.as().munmap(base);
    EXPECT_GE(f.dev.stats().xlate_invalidations, 1u);

    // A fresh mapping (likely reusing the address) must not see the
    // dead entry: the next move re-walks and copies the right frames.
    const vm::VAddr again = f.proc.mmap(kBytes, vm::PageSize::k4K);
    const auto pattern = f.checked_pattern(again, kBytes, 2);
    const std::uint64_t hits_before = f.dev.stats().xlate_hits;
    ASSERT_EQ(f.migrate(again, kPages, f.kernel.fast_node()),
              MovStatus::kDone);
    EXPECT_EQ(f.dev.stats().xlate_hits, hits_before);  // cold, no hit
    f.expect_intact(again, pattern);
    f.expect_on_node(again, kPages, f.kernel.fast_node());
}

TEST(XlateCache, ForeignRemapInvalidatesCachedTranslations)
{
    Fixture f{Fixture::cached()};
    const vm::VAddr base = f.proc.mmap(kBytes, vm::PageSize::k4K);
    const auto pattern = f.checked_pattern(base, kBytes, 3);
    ASSERT_EQ(f.migrate(base, kPages, f.kernel.fast_node()),
              MovStatus::kDone);
    const std::uint64_t inval_before = f.dev.stats().xlate_invalidations;

    // Linux-path migration remaps the same region behind memif's back;
    // its TLB shootdown must kill the cached gang translation.
    auto remapper = [&]() -> sim::Task {
        os::MigrationResult res;
        co_await os::migrate_pages_sync(f.proc, base, kPages,
                                        f.kernel.slow_node(), &res);
        EXPECT_EQ(res.pages_failed, 0u);
    };
    f.kernel.spawn(remapper());
    f.kernel.run();
    EXPECT_GT(f.dev.stats().xlate_invalidations, inval_before);

    // The next move must translate the NEW placement, not the cached
    // one: data lands intact on the fast node again.
    ASSERT_EQ(f.migrate(base, kPages, f.kernel.fast_node()),
              MovStatus::kDone);
    f.expect_intact(base, pattern);
    f.expect_on_node(base, kPages, f.kernel.fast_node());
}

/** The §5.2 race, with the cache warm: a CPU write mid-move clears the
 *  young bit via CAS, which must invalidate the gang entry so no later
 *  move copies from stale PTEs. Run under proceed-and-fail. */
TEST(XlateCache, RacingYoungClearInvalidatesUnderDetect)
{
    Fixture f{Fixture::cached(RacePolicy::kDetect)};
    const vm::VAddr base = f.proc.mmap(kBytes, vm::PageSize::k4K);
    auto pattern = f.checked_pattern(base, kBytes, 4);
    ASSERT_EQ(f.migrate(base, kPages, f.kernel.fast_node()),
              MovStatus::kDone);

    // Cached move back, with a mid-flight write landing in the region.
    const std::uint32_t idx =
        f.submit_migration(base, kPages, f.kernel.slow_node());
    os::TouchOutcome out;
    auto toucher = [&]() -> sim::Task {
        co_await f.proc.touch(base + 10 * 4096, true, &out);
    };
    f.kernel.eq().schedule_at(f.kernel.eq().now() + kMidFlight,
                              [&] { f.kernel.spawn(toucher()); });
    f.kernel.run();
    EXPECT_EQ(f.user.request(idx).load_status(), MovStatus::kRaceDetected);
    f.user.free_request(idx);
    EXPECT_GE(f.dev.stats().xlate_invalidations, 1u);
    EXPECT_EQ(out.blocked, 0u);

    // The dirty write is part of the expected image from here on.
    ASSERT_TRUE(f.proc.as().read(base, pattern.data(), pattern.size()));

    // No stale-PTE copy: a retry re-walks and moves the real frames.
    ASSERT_EQ(f.migrate(base, kPages, f.kernel.slow_node()),
              MovStatus::kDone);
    f.expect_intact(base, pattern);
    f.expect_on_node(base, kPages, f.kernel.slow_node());
}

/** Same race under prevention: the toucher parks on the migration PTE,
 *  the move completes, and subsequent cached moves stay coherent. */
TEST(XlateCache, RacingTouchUnderPreventStaysCoherent)
{
    Fixture f{Fixture::cached(RacePolicy::kPrevent)};
    const vm::VAddr base = f.proc.mmap(kBytes, vm::PageSize::k4K);
    auto pattern = f.checked_pattern(base, kBytes, 5);
    ASSERT_EQ(f.migrate(base, kPages, f.kernel.fast_node()),
              MovStatus::kDone);

    const std::uint32_t idx =
        f.submit_migration(base, kPages, f.kernel.slow_node());
    os::TouchOutcome out;
    auto toucher = [&]() -> sim::Task {
        co_await f.proc.touch(base + 10 * 4096, true, &out);
    };
    f.kernel.eq().schedule_at(f.kernel.eq().now() + kMidFlight,
                              [&] { f.kernel.spawn(toucher()); });
    f.kernel.run();
    EXPECT_EQ(f.user.request(idx).load_status(), MovStatus::kDone);
    f.user.free_request(idx);
    EXPECT_GE(out.blocked, 1u);
    EXPECT_GE(f.dev.stats().xlate_invalidations, 1u);

    // The post-release write is part of the expected image.
    ASSERT_TRUE(f.proc.as().read(base, pattern.data(), pattern.size()));
    ASSERT_EQ(f.migrate(base, kPages, f.kernel.fast_node()),
              MovStatus::kDone);
    f.expect_intact(base, pattern);
    f.expect_on_node(base, kPages, f.kernel.fast_node());
}

// --------------------------------------------------------------------
// Bulk frame allocation: magazines leak nothing, rollback included.
// --------------------------------------------------------------------

TEST(BulkAlloc, MagazineRecyclesAndDrainsWithoutLeak)
{
    os::Kernel kernel;
    os::Process &proc = kernel.create_process();
    const mem::NodeId fast = kernel.fast_node();
    const std::uint64_t fast_before =
        kernel.phys().node(fast).buddy().allocated_frames();
    const vm::VAddr base = proc.mmap(16 * 4096, vm::PageSize::k4K);
    {
        MemifConfig mc;
        mc.capacity = 64;
        mc.bulk_alloc = true;
        mc.magazine_refill = 8;
        MemifDevice dev(kernel, proc, mc);
        MemifUser user(dev);
        for (const mem::NodeId dst : {fast, kernel.slow_node()}) {
            const std::uint32_t idx = user.alloc_request();
            MovReq &req = user.request(idx);
            req.op = MovOp::kMigrate;
            req.src_base = base;
            req.num_pages = 16;
            req.dst_node = dst;
            kernel.spawn(user.submit(idx));
            kernel.run();
            ASSERT_EQ(user.request(idx).load_status(), MovStatus::kDone);
            user.free_request(idx);
        }
        const DeviceStats &ds = dev.stats();
        EXPECT_GT(ds.bulk_allocs, 0u);
        EXPECT_GT(ds.magazine_pops, 0u);
        // The return trip freed the fast frames into the magazine: they
        // stay buddy-allocated while parked.
        EXPECT_GT(kernel.phys().node(fast).buddy().allocated_frames(),
                  fast_before);
    }
    // Device teardown drains every magazine: nothing may stay behind on
    // the fast node (the region itself lives on the slow node again).
    EXPECT_EQ(kernel.phys().node(fast).buddy().allocated_frames(),
              fast_before);
}

TEST(BulkAlloc, AbortedMigrationReturnsMagazineFrames)
{
    os::Kernel kernel;
    os::Process &proc = kernel.create_process();
    const mem::NodeId fast = kernel.fast_node();
    const std::uint64_t fast_before =
        kernel.phys().node(fast).buddy().allocated_frames();
    const vm::VAddr base = proc.mmap(kBytes, vm::PageSize::k4K);
    std::vector<std::uint8_t> pattern(kBytes);
    for (std::size_t i = 0; i < pattern.size(); ++i)
        pattern[i] = static_cast<std::uint8_t>(i * 31);
    ASSERT_TRUE(proc.as().write(base, pattern.data(), pattern.size()));
    {
        MemifConfig mc;
        mc.capacity = 64;
        mc.bulk_alloc = true;
        mc.race_policy = RacePolicy::kRecover;
        mc.poll_threshold_bytes = 0;
        MemifDevice dev(kernel, proc, mc);
        MemifUser user(dev);
        const std::uint32_t idx = user.alloc_request();
        MovReq &req = user.request(idx);
        req.op = MovOp::kMigrate;
        req.src_base = base;
        req.num_pages = kPages;
        req.dst_node = fast;
        kernel.spawn(user.submit(idx));
        os::TouchOutcome out;
        auto toucher = [&]() -> sim::Task {
            co_await proc.touch(base + 10 * 4096, true, &out);
        };
        kernel.eq().schedule_at(kMidFlight,
                                [&] { kernel.spawn(toucher()); });
        kernel.run();
        EXPECT_EQ(user.request(idx).load_status(), MovStatus::kAborted);
        EXPECT_EQ(dev.stats().migrations_aborted, 1u);
        user.free_request(idx);
    }
    // Rollback freed the bulk-allocated destination frames into the
    // magazine; teardown drained it. Leak check: the fast node is back
    // to its pre-test population and the data never moved.
    EXPECT_EQ(kernel.phys().node(fast).buddy().allocated_frames(),
              fast_before);
    std::vector<std::uint8_t> readback(pattern.size());
    ASSERT_TRUE(proc.as().read(base, readback.data(), readback.size()));
    EXPECT_EQ(readback, pattern);
}

// --------------------------------------------------------------------
// Per-CPU submission rings.
// --------------------------------------------------------------------

TEST(PercpuRings, TwoCpusSubmitThroughTheirOwnRings)
{
    os::Kernel kernel;
    os::Process &proc = kernel.create_process();
    MemifConfig mc;
    mc.capacity = 64;
    mc.percpu_rings = true;
    mc.num_submit_cpus = 2;
    MemifDevice dev(kernel, proc, mc);
    ASSERT_EQ(dev.region().num_rings(), 2u);
    MemifUser u0(dev, 0);
    MemifUser u1(dev, 1);

    const vm::VAddr a = proc.mmap(16 * 4096, vm::PageSize::k4K);
    const vm::VAddr b = proc.mmap(16 * 4096, vm::PageSize::k4K);
    auto submit_from = [&](MemifUser &u, vm::VAddr src) {
        const std::uint32_t idx = u.alloc_request();
        MovReq &req = u.request(idx);
        req.op = MovOp::kMigrate;
        req.src_base = src;
        req.num_pages = 16;
        req.dst_node = kernel.fast_node();
        kernel.spawn(u.submit(idx));
        return idx;
    };
    const std::uint32_t ia = submit_from(u0, a);
    const std::uint32_t ib = submit_from(u1, b);
    kernel.run();

    EXPECT_EQ(u0.request(ia).load_status(), MovStatus::kDone);
    EXPECT_EQ(u1.request(ib).load_status(), MovStatus::kDone);
    EXPECT_EQ(dev.stats().ring_submits[0], 1u);
    EXPECT_EQ(dev.stats().ring_submits[1], 1u);
    EXPECT_EQ(dev.stats().shared_submit_retries, 0u);
    // The requests carried their submitting CPU.
    EXPECT_EQ(u0.request(ia).submit_cpu, 0u);
    EXPECT_EQ(u1.request(ib).submit_cpu, 1u);
}

TEST(PercpuRings, SubmitManyUsesTheCallersRing)
{
    os::Kernel kernel;
    os::Process &proc = kernel.create_process();
    MemifConfig mc;
    mc.capacity = 64;
    mc.percpu_rings = true;
    mc.num_submit_cpus = 4;
    MemifDevice dev(kernel, proc, mc);
    MemifUser u3(dev, 3);

    std::vector<vm::VAddr> bases;
    std::vector<std::uint32_t> idxs;
    for (int i = 0; i < 4; ++i) {
        bases.push_back(proc.mmap(4 * 4096, vm::PageSize::k4K));
        const std::uint32_t idx = u3.alloc_request();
        MovReq &req = u3.request(idx);
        req.op = MovOp::kMigrate;
        req.src_base = bases.back();
        req.num_pages = 4;
        req.dst_node = kernel.fast_node();
        idxs.push_back(idx);
    }
    bool kicked = false;
    kernel.spawn(u3.submit_many(idxs, &kicked));
    kernel.run();
    EXPECT_TRUE(kicked);
    for (const std::uint32_t idx : idxs)
        EXPECT_EQ(u3.request(idx).load_status(), MovStatus::kDone);
    EXPECT_EQ(dev.stats().ring_submits[3], 4u);
    EXPECT_EQ(dev.stats().ring_submits[0], 0u);
}

}  // namespace
}  // namespace memif::core
