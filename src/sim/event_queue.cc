#include "sim/event_queue.h"

#include <utility>

#include "sim/log.h"

namespace memif::sim {

EventQueue::EventId
EventQueue::schedule_at(SimTime when, Callback cb)
{
    MEMIF_ASSERT(cb != nullptr);
    if (when < now_) when = now_;  // never schedule into the past
    const EventId id = next_seq_++;
    const std::uint64_t key = fuzzing_ ? tie_rng_.next() : id;
    events_.push(Event{when, key, id, std::move(cb)});
    live_.insert(id);
    return id;
}

EventQueue::EventId
EventQueue::schedule_after(Duration delay, Callback cb)
{
    return schedule_at(now_ + delay, std::move(cb));
}

bool
EventQueue::cancel(EventId id)
{
    // The Event stays in the priority queue (heap middle removal is not
    // worth it); skip_cancelled() discards it when it surfaces, without
    // touching the clock.
    return live_.erase(id) != 0;
}

void
EventQueue::skip_cancelled()
{
    while (!events_.empty() && !live_.count(events_.top().seq))
        events_.pop();
}

bool
EventQueue::step()
{
    skip_cancelled();
    if (events_.empty()) return false;
    // Move the callback out before popping so the event may schedule
    // new events (including at the same timestamp) safely.
    Event ev = events_.top();
    events_.pop();
    live_.erase(ev.seq);
    MEMIF_ASSERT(ev.when >= now_);
    now_ = ev.when;
    ++executed_;
    ev.cb();
    return true;
}

std::uint64_t
EventQueue::run()
{
    std::uint64_t n = 0;
    while (step()) ++n;
    return n;
}

std::uint64_t
EventQueue::run_until(SimTime deadline)
{
    std::uint64_t n = 0;
    for (;;) {
        skip_cancelled();
        if (events_.empty() || events_.top().when > deadline) break;
        step();
        ++n;
    }
    if (now_ < deadline) now_ = deadline;
    return n;
}

}  // namespace memif::sim
