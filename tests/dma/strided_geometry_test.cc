/**
 * @file
 * Geometry oracle tests for 2D (strided) transfer descriptors: the
 * engine walking A/B-count geometry must land exactly the bytes a
 * naive per-row memcpy would, across randomized pitch/rows shapes —
 * degenerate flat (pitch == row_bytes), padded pitches, mismatched
 * src/dst pitches, and rows straddling 4 KB frame boundaries inside a
 * higher-order allocation. Seeds are pinned so every shape replays.
 */
#include "dma/driver.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "dma/descriptor.h"
#include "dma/engine.h"
#include "mem/phys.h"
#include "sim/cost_model.h"
#include "sim/event_queue.h"
#include "sim/random.h"

namespace memif::dma {
namespace {

struct Fixture {
    sim::EventQueue eq;
    mem::PhysicalMemory pm;
    sim::CostModel cm;
    mem::NodeId slow, fast;
    Edma3Engine engine{eq, pm, cm};

    Fixture()
    {
        auto ids = mem::KeystoneMemory::build(pm, 32ull << 20);
        slow = ids.first;
        fast = ids.second;
    }

    /** A physically contiguous block of 2^order frames, pattern @p s. */
    std::uint64_t
    block(mem::NodeId node, unsigned order, std::uint8_t s)
    {
        const mem::Pfn pfn = pm.allocate(node, order);
        const std::uint64_t bytes = mem::kPageSize << order;
        std::byte *p = pm.span(pfn, bytes);
        for (std::uint64_t i = 0; i < bytes; ++i)
            p[i] = static_cast<std::byte>(s + i * 13);
        return pfn << mem::kPageShift;
    }

    std::byte *at(std::uint64_t pa, std::uint64_t len)
    {
        return pm.span(pa >> mem::kPageShift,
                       (pa & (mem::kPageSize - 1)) + len) +
               (pa & (mem::kPageSize - 1));
    }
};

/** The naive oracle: what dst must hold after the strided move. */
std::vector<std::byte>
oracle(Fixture &f, std::uint64_t src, std::uint64_t dst_base,
       std::uint64_t span, std::uint64_t row_bytes, std::uint32_t rows,
       std::uint64_t sp, std::uint64_t dp)
{
    std::vector<std::byte> want(f.at(dst_base, span),
                                f.at(dst_base, span) + span);
    for (std::uint32_t r = 0; r < rows; ++r)
        std::memcpy(want.data() + r * dp, f.at(src + r * sp, row_bytes),
                    row_bytes);
    return want;
}

TEST(StridedDescriptor, EncodesPitchGeometry)
{
    const TransferDescriptor d =
        TransferDescriptor::strided(0x1000, 0x9000, 256, 64, 1024, 256);
    EXPECT_EQ(d.a_cnt, 256);
    EXPECT_EQ(d.b_cnt, 64);
    EXPECT_EQ(d.src_bidx, 1024);
    EXPECT_EQ(d.dst_bidx, 256);
    EXPECT_EQ(d.total_bytes(), 64u * 256u);
}

TEST(StridedDescriptor, SingleRowDegeneratesToFlat)
{
    const TransferDescriptor d =
        TransferDescriptor::strided(0, 0x1000, 512, 1, 512, 512);
    EXPECT_EQ(d.total_bytes(), 512u);
    EXPECT_EQ(d.b_cnt, 1);
}

TEST(StridedEngine, MovesExactlyTheOracleBytes)
{
    Fixture f;
    const std::uint64_t src = f.block(f.slow, 4, 11);
    const std::uint64_t dst = f.block(f.fast, 4, 77);
    const std::uint64_t rows = 16, rb = 256, sp = 1024, dp = 512;
    const std::uint64_t span = (rows - 1) * dp + rb;
    const auto want = oracle(f, src, dst, span, rb, rows, sp, dp);

    f.engine.param_ram().write_full(
        3, TransferDescriptor::strided(src, dst, rb, rows, sp, dp));
    bool fired = false;
    f.engine.start_chain(3, 0, true, [&](TransferId) { fired = true; });
    f.eq.run();
    ASSERT_TRUE(fired);
    EXPECT_EQ(std::memcmp(f.at(dst, span), want.data(), span), 0);
    EXPECT_EQ(f.engine.stats().bytes_copied, rows * rb);
}

/**
 * Randomized geometry sweep through the driver (lease + programming +
 * engine walk), pinned seeds. Shapes deliberately include pitch ==
 * row_bytes (flat), pitches that are not multiples of the row, and
 * rows crossing 4 KB frame boundaries (the block is physically
 * contiguous, so the engine may walk straight across).
 */
TEST(StridedEngine, RandomGeometriesMatchTheOracle)
{
    for (const std::uint64_t seed : {1ull, 7ull, 23ull, 1997ull}) {
        Fixture f;
        DmaDriver driver(f.engine, f.cm);
        sim::Rng rng(seed);
        const std::uint64_t bytes = mem::kPageSize << 5;  // 128 KB
        const std::uint64_t src = f.block(f.slow, 5, 5);
        const std::uint64_t dst = f.block(f.fast, 5, 200);

        for (unsigned round = 0; round < 24; ++round) {
            const std::uint32_t rows =
                1 + static_cast<std::uint32_t>(rng.next_below(32));
            const std::uint64_t rb = 1 + rng.next_below(1024);
            // Pitches >= row_bytes, sometimes exactly equal (flat).
            const std::uint64_t sp =
                rb + (rng.next_below(3) == 0 ? 0 : rng.next_below(512));
            const std::uint64_t dp =
                rb + (rng.next_below(3) == 0 ? 0 : rng.next_below(512));
            const std::uint64_t sspan = (rows - 1) * sp + rb;
            const std::uint64_t dspan = (rows - 1) * dp + rb;
            if (sspan > bytes || dspan > bytes) continue;
            const std::uint64_t soff = rng.next_below(bytes - sspan + 1);
            const std::uint64_t doff = rng.next_below(bytes - dspan + 1);

            const auto want = oracle(f, src + soff, dst + doff, dspan, rb,
                                     rows, sp, dp);
            std::vector<SgEntry> sg{SgEntry{
                src + soff, dst + doff, rb, rows, sp, dp}};
            ASSERT_EQ(sg[0].strided(), rows > 1);
            bool done = false;
            driver.start(driver.prepare(sg), true,
                         [&](TransferId) { done = true; });
            f.eq.run();
            ASSERT_TRUE(done) << "seed " << seed << " round " << round;
            ASSERT_EQ(std::memcmp(f.at(dst + doff, dspan), want.data(),
                                  dspan),
                      0)
                << "seed " << seed << " round " << round << ": rows "
                << rows << " rb " << rb << " sp " << sp << " dp " << dp;
        }
    }
}

/**
 * Chain-cache separation: a strided lease must never hand its 2D
 * descriptor to a later flat transfer of the same byte count (the
 * signature keeps the two keyspaces disjoint), and a reused strided
 * descriptor is always fully reprogrammed.
 */
TEST(StridedDriver, FlatAfterStridedNeverInheritsPitchGeometry)
{
    Fixture f;
    DmaDriver driver(f.engine, f.cm);
    const std::uint64_t src = f.block(f.slow, 4, 3);
    const std::uint64_t dst = f.block(f.fast, 4, 91);

    // Strided transfer: 8 rows x 512 bytes = 4096 payload bytes.
    std::vector<SgEntry> strided_sg{
        SgEntry{src, dst, 512, 8, 1024, 512}};
    bool done = false;
    driver.start(driver.prepare(strided_sg), true,
                 [&](TransferId) { done = true; });
    f.eq.run();
    ASSERT_TRUE(done);

    // Flat transfer of the same total size: must copy 4096 contiguous
    // bytes, not replay the pitched walk.
    const std::uint64_t src2 = src + (16ull << 10);
    const std::uint64_t dst2 = dst + (16ull << 10);
    std::vector<SgEntry> flat_sg{SgEntry{src2, dst2, 4096}};
    const auto want =
        oracle(f, src2, dst2, 4096, 4096, 1, 4096, 4096);
    done = false;
    driver.start(driver.prepare(flat_sg), true,
                 [&](TransferId) { done = true; });
    f.eq.run();
    ASSERT_TRUE(done);
    EXPECT_EQ(std::memcmp(f.at(dst2, 4096), want.data(), 4096), 0);
}

}  // namespace
}  // namespace memif::dma
