#include "os/kernel.h"

#include <algorithm>

#include "os/process.h"
#include "sim/log.h"

namespace memif::os {

Kernel::Kernel(KernelConfig cfg)
    : cfg_(cfg),
      cpu_(eq_, cfg.num_cores),
      migration_waitq_(eq_)
{
    cpu_.set_single_driver_core(cfg_.single_driver_core);
    auto ids = mem::KeystoneMemory::build(pm_, cfg_.slow_bytes);
    slow_node_ = ids.first;
    fast_node_ = ids.second;
    if (cfg_.far_bytes != 0) {
        // Third tier: an emulated remote node (Akram et al.) — capped
        // bandwidth plus per-descriptor RDMA-class latency, both from
        // the cost model. SLIT-style distances make the non-adjacency
        // explicit: SRAM and the far tier are two hops apart, with DDR
        // the natural staging point between them.
        far_node_ = pm_.add_node(mem::NodeConfig{
            .name = "far-remote",
            .bytes = cfg_.far_bytes,
            .bandwidth_bps = cfg_.costs.far_mem_bw,
            .is_fast = false,
            .latency_ns =
                static_cast<std::uint64_t>(cfg_.costs.far_mem_latency)});
        pm_.set_distance(slow_node_, far_node_, 30);
        pm_.set_distance(fast_node_, far_node_, 40);
    }
    faults_.seed(cfg_.fault_seed);
    engine_ =
        std::make_unique<dma::Edma3Engine>(eq_, pm_, cfg_.costs, &faults_);
    dma_driver_ = std::make_unique<dma::DmaDriver>(*engine_, cfg_.costs,
                                                   cfg_.dma_options);
}

Kernel::~Kernel() = default;

Process &
Kernel::create_process()
{
    const auto pid = static_cast<std::uint32_t>(processes_.size() + 1);
    processes_.push_back(std::make_unique<Process>(*this, pid));
    return *processes_.back();
}

void
Kernel::spawn(sim::Task task)
{
    reap_finished_tasks();
    if (!task.done()) tasks_.push_back(std::move(task));
    // else: finished synchronously; rethrow any stored error and drop.
    else
        task.rethrow_if_failed();
}

void
Kernel::reap_finished_tasks()
{
    std::erase_if(tasks_, [](const sim::Task &t) {
        if (!t.done()) return false;
        t.rethrow_if_failed();
        return true;
    });
}

}  // namespace memif::os
