/**
 * @file
 * A real three-level radix page table (ARM LPAE-like geometry), the
 * structure the memif driver's gang lookup (§5.1) walks.
 *
 * Levels cover a 39-bit virtual space with 512-entry tables:
 *
 *   L1  bits [38:30]  1 GB per entry   (always a table pointer here)
 *   L2  bits [29:21]  2 MB per entry   (table pointer or 2 MB block PTE)
 *   L3  bits [20:12]  4 KB per entry   (4 KB page PTEs; a 64 KB page
 *                                       occupies the first slot of its
 *                                       16-entry naturally aligned group,
 *                                       like ARM's contiguous-hint pages)
 *
 * The table hands out stable PteSlot pointers (Vmas resolve their slots
 * once at mmap time), and its walks report *real* traversal counts —
 * full descents vs. horizontal neighbour steps — which the driver
 * converts to time. A gang walk re-descends exactly when it crosses a
 * leaf-table boundary, so the §5.1 cost structure emerges from the
 * structure itself rather than from a formula.
 */
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "vm/page_size.h"
#include "vm/pte.h"
#include "vm/walk_cost.h"

namespace memif::vm {

class PageTable {
  public:
    static constexpr unsigned kEntries = 512;
    static constexpr unsigned kL1Shift = 30;
    static constexpr unsigned kL2Shift = 21;
    static constexpr unsigned kL3Shift = 12;
    /** Highest mappable address + 1 (39-bit space). */
    static constexpr VAddr kVaLimit = 1ull << 39;

    PageTable() = default;
    PageTable(const PageTable &) = delete;
    PageTable &operator=(const PageTable &) = delete;

    /**
     * The PTE slot for the page of size @p psize containing @p va,
     * creating intermediate tables when @p create. @p va must be
     * page-aligned for the given size.
     * @return nullptr when not present and !create.
     */
    PteSlot *slot(VAddr va, PageSize psize, bool create);

    /** A walk result with its real traversal cost. */
    struct Walk {
        PteSlot *slot = nullptr;
        WalkCost cost;
    };

    /**
     * Locate the slots of @p num_pages consecutive pages starting at
     * @p va, walking horizontally within leaf tables and re-descending
     * only at boundaries (gang lookup, §5.1). Slots must exist.
     */
    struct Gang {
        std::vector<PteSlot *> slots;
        WalkCost cost;
    };
    Gang gang_lookup(VAddr va, std::uint64_t num_pages, PageSize psize);

    /**
     * Per-page lookup cost of the baseline strategy (one full descent
     * per page); slots identical to gang_lookup's.
     */
    static WalkCost
    per_page_cost(std::uint64_t num_pages)
    {
        return per_page_walk(num_pages);
    }

    /** Number of allocated tables (root not counted). */
    std::size_t table_count() const { return table_count_; }

  private:
    struct Table {
        std::array<PteSlot, kEntries> slots{};
        std::array<std::unique_ptr<Table>, kEntries> children{};
    };

    Table *descend(Table &parent, unsigned index, bool create);

    /** Slot index within the leaf table for a page of @p psize. */
    static unsigned
    leaf_index(VAddr va, PageSize psize)
    {
        if (psize == PageSize::k2M)
            return static_cast<unsigned>((va >> kL2Shift) & (kEntries - 1));
        return static_cast<unsigned>((va >> kL3Shift) & (kEntries - 1));
    }

    Table root_;
    std::size_t table_count_ = 0;
};

}  // namespace memif::vm
