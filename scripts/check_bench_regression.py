#!/usr/bin/env python3
"""Gate on the machine-readable bench artifacts (BENCH_*.json).

Checks that the pipelined memif configuration actually pays off in the
Figure 8 sweep: at every 4 KB point with >= 16 pages/request, the
memif-pip-4KB series must beat the paper-default memif-mig-4KB series
by at least MIN_SPEEDUP. Pure stdlib so it runs anywhere CI does.

Usage: check_bench_regression.py [dir-with-BENCH-json]   (default: .)
"""
import json
import os
import sys

MIN_SPEEDUP = 1.25
MIN_PAGES = 16


def fail(msg):
    print(f"check_bench_regression: FAIL: {msg}")
    return 1


def main():
    where = sys.argv[1] if len(sys.argv) > 1 else "."
    path = os.path.join(where, "BENCH_fig8_throughput.json")
    try:
        with open(path) as f:
            report = json.load(f)
    except OSError as e:
        return fail(f"cannot read {path}: {e}")

    series = report.get("series", {})
    base = dict((x, y) for x, y in series.get("memif-mig-4KB", []))
    pip = dict((x, y) for x, y in series.get("memif-pip-4KB", []))
    if not pip:
        return fail("memif-pip-4KB series missing from the artifact")

    checked = 0
    for pages, gbps in sorted(pip.items()):
        if pages < MIN_PAGES or pages not in base:
            continue
        checked += 1
        ratio = gbps / base[pages]
        print(f"  4KB x{int(pages)}: pipelined {gbps:.2f} GB/s "
              f"vs default {base[pages]:.2f} GB/s = {ratio:.2f}x")
        if ratio < MIN_SPEEDUP:
            return fail(
                f"pipelined speedup {ratio:.2f}x < {MIN_SPEEDUP}x "
                f"at {int(pages)} pages/request")
    if checked == 0:
        return fail(f"no comparable points at >= {MIN_PAGES} pages")
    print(f"check_bench_regression: OK ({checked} points)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
