/**
 * @file
 * Ablation of the *interface* design decisions (§2.3, §7): the same
 * driver served through three different user/kernel interfaces:
 *
 *   red-blue (memif)  — asynchronous shared queues; the staging queue's
 *                       color hands flush duty around; ~one syscall per
 *                       idle period.
 *   syscall-per-req   — the conventional interface: every submission
 *                       enters the kernel (low latency, high overhead).
 *   push-batch-8      — the netmap/MegaPipe-style alternative the paper
 *                       argues against: userspace accumulates a batch,
 *                       then pushes it with one syscall (low overhead,
 *                       but every batched request waits for the batch
 *                       to fill).
 *
 * Requests arrive as a steady stream (as in §2.1); each moves sixteen
 * 4 KB pages to the fast node and back.
 */
#include <cstdio>
#include <vector>

#include "harness.h"
#include "memif/user_api.h"

namespace memif::bench {
namespace {

constexpr std::uint32_t kRequests = 32;
constexpr std::uint32_t kPages = 16;
// Two arrival regimes: a burst (all requests at once, the Fig. 7
// pattern where the async interface shines) and a paced stream slower
// than the ~110 us service time (isolating pure interface costs).
sim::Duration g_arrival_gap = 0;

struct Result {
    double mean_latency_us = 0;
    double max_latency_us = 0;
    std::uint64_t syscalls = 0;
    sim::Duration elapsed = 0;
    sim::Duration cpu_total = 0;
};

/** Prepare a rotating set of ping-pong regions and a request filler
 *  (rotation keeps in-flight moves on distinct regions). */
struct Driver {
    static constexpr unsigned kRegions = 8;
    TestBed bed;
    std::vector<vm::VAddr> regions;
    std::vector<bool> on_fast;
    unsigned next_region = 0;

    Driver() : on_fast(kRegions, false)
    {
        for (unsigned r = 0; r < kRegions; ++r)
            regions.push_back(
                bed.proc.mmap(kPages * 4096, vm::PageSize::k4K));
    }

    std::uint32_t
    fill_request(std::uint32_t arrival_no)
    {
        const unsigned r = next_region;
        next_region = (next_region + 1) % kRegions;
        const std::uint32_t idx = bed.user.alloc_request();
        core::MovReq &req = bed.user.request(idx);
        req.op = core::MovOp::kMigrate;
        req.src_base = regions[r];
        req.num_pages = kPages;
        req.dst_node = on_fast[r] ? bed.kernel.slow_node()
                                  : bed.kernel.fast_node();
        on_fast[r] = !on_fast[r];
        // Latency is measured from the request's *arrival* — the moment
        // the application produced it — which an interface that blocks
        // on submission cannot postpone.
        req.user_tag = arrival_no * g_arrival_gap;
        return idx;
    }

    Result
    collect(std::uint64_t syscalls)
    {
        Result r;
        r.syscalls = syscalls;
        std::uint32_t done = 0;
        double sum = 0;
        // Requests are processed by kernel.run() already; drain.
        while (done < kRequests) {
            const std::uint32_t idx = bed.user.retrieve_completed();
            MEMIF_ASSERT(idx != core::kNoRequest, "stream incomplete");
            const core::MovReq &req = bed.user.request(idx);
            MEMIF_ASSERT(req.succeeded());
            const double lat =
                sim::to_us(req.complete_time - req.user_tag);
            sum += lat;
            if (lat > r.max_latency_us) r.max_latency_us = lat;
            bed.user.free_request(idx);
            ++done;
        }
        r.mean_latency_us = sum / kRequests;
        r.elapsed = bed.kernel.eq().now();
        r.cpu_total = bed.kernel.cpu().accounting().total;
        return r;
    }
};

/** Sleep until request @p i's scheduled arrival instant. */
sim::Task
wait_for_arrival(TestBed &bed, std::uint32_t i)
{
    const sim::SimTime arrival = i * g_arrival_gap;
    const sim::SimTime now = bed.kernel.eq().now();
    if (arrival > now)
        co_await sim::Delay{bed.kernel.eq(), arrival - now};
}

/** The memif interface: MemifUser::submit (red-blue protocol). */
Result
run_redblue()
{
    Driver d;
    auto app = [&]() -> sim::Task {
        for (std::uint32_t i = 0; i < kRequests; ++i) {
            co_await wait_for_arrival(d.bed, i);
            co_await d.bed.user.submit(d.fill_request(i));
        }
    };
    auto t = app();
    d.bed.kernel.run();
    return d.collect(d.bed.user.stats().kicks);
}

/** One ioctl per request, like conventional char-device interfaces. */
Result
run_syscall_per_request()
{
    Driver d;
    std::uint64_t syscalls = 0;
    auto app = [&]() -> sim::Task {
        for (std::uint32_t i = 0; i < kRequests; ++i) {
            co_await wait_for_arrival(d.bed, i);
            const std::uint32_t idx = d.fill_request(i);
            core::MovReq &req = d.bed.user.request(idx);
            req.submit_time = d.bed.kernel.eq().now();
            req.store_status(core::MovStatus::kSubmitted);
            d.bed.dev.region().submission_queue().enqueue(idx);
            ++syscalls;
            co_await d.bed.dev.ioctl_mov_one();
        }
    };
    auto t = app();
    d.bed.kernel.run();
    return d.collect(syscalls);
}

/** Accumulate a local batch, push it with one syscall (netmap-style). */
Result
run_push_batch(std::uint32_t batch)
{
    Driver d;
    std::uint64_t syscalls = 0;
    auto app = [&]() -> sim::Task {
        std::vector<std::uint32_t> local;
        for (std::uint32_t i = 0; i < kRequests; ++i) {
            co_await wait_for_arrival(d.bed, i);
            const std::uint32_t idx = d.fill_request(i);
            core::MovReq &req = d.bed.user.request(idx);
            req.submit_time = d.bed.kernel.eq().now();
            req.store_status(core::MovStatus::kSubmitted);
            local.push_back(idx);
            if (local.size() == batch || i + 1 == kRequests) {
                for (const std::uint32_t r : local)
                    d.bed.dev.region().submission_queue().enqueue(r);
                local.clear();
                ++syscalls;
                co_await d.bed.dev.ioctl_mov_one();
            }
        }
    };
    auto t = app();
    d.bed.kernel.run();
    return d.collect(syscalls);
}

void
row(const char *name, const Result &r)
{
    std::printf("%-18s %10llu %13.1f %13.1f %12.2f %9.2f\n", name,
                static_cast<unsigned long long>(r.syscalls),
                r.mean_latency_us, r.max_latency_us,
                sim::to_ms(r.elapsed), sim::to_ms(r.cpu_total));
}

}  // namespace
}  // namespace memif::bench

int
main()
{
    using namespace memif::bench;
    header("Interface ablation: red-blue async vs syscall-per-request vs "
           "push-batching");
    for (const auto gap_us : {0u, 120u}) {
        g_arrival_gap = memif::sim::microseconds(gap_us);
        std::printf("\n%u migration requests (16 x 4KB each), %s\n\n",
                    kRequests,
                    gap_us == 0 ? "submitted back to back (burst)"
                                : "arriving every 120 us (paced)");
        std::printf("%-18s %10s %13s %13s %12s %9s\n", "interface",
                    "syscalls", "mean_lat_us", "max_lat_us", "elapsed_ms",
                    "cpu_ms");
        rule();
        row("red-blue (memif)", run_redblue());
        row("syscall-per-req", run_syscall_per_request());
        row("push-batch-8", run_push_batch(8));
        rule();
    }
    std::printf(
        "\nthe paper's point (2.3): batching amortizes syscalls but delays\n"
        "every batched request; per-request syscalls get latency but pay a\n"
        "crossing (and its workload interference) every time. The red-blue\n"
        "queue matches per-request latency while collapsing a burst's\n"
        "syscalls to one; when traffic is slow enough that the kernel\n"
        "thread drains between arrivals, it gracefully degenerates to one\n"
        "kick per request.\n");
    return 0;
}
