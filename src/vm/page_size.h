/**
 * @file
 * Page granularities and geometry helpers, shared by Vmas and the
 * radix page table.
 */
#pragma once

#include <cstdint>

#include "mem/phys.h"

namespace memif::vm {

/** Virtual address. */
using VAddr = std::uint64_t;

/** Page granularities evaluated in the paper (Fig. 6/8). */
enum class PageSize : unsigned {
    k4K = 12,
    k64K = 16,
    k2M = 21,
};

/** Page size in bytes. */
constexpr std::uint64_t
page_bytes(PageSize ps)
{
    return std::uint64_t{1} << static_cast<unsigned>(ps);
}

/** Buddy order of one page of this size (in 4 KB frames). */
constexpr unsigned
page_order(PageSize ps)
{
    return static_cast<unsigned>(ps) - mem::kPageShift;
}

/** Number of 4 KB frames per page of this size. */
constexpr std::uint64_t
frames_per_page(PageSize ps)
{
    return std::uint64_t{1} << page_order(ps);
}

}  // namespace memif::vm
