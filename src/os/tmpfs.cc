#include "os/tmpfs.h"

#include <cstring>

#include "os/kernel.h"
#include "sim/log.h"

namespace memif::os {

TmpFs::File::File(TmpFs &fs, std::string name, std::uint64_t num_pages)
    : fs_(fs), name_(std::move(name))
{
    mem::PhysicalMemory &pm = fs_.kernel().phys();
    cache_.reserve(num_pages);
    for (std::uint64_t i = 0; i < num_pages; ++i) {
        const mem::Pfn pfn = pm.allocate(fs_.kernel().slow_node(), 0);
        if (pfn == mem::kInvalidPfn)
            MEMIF_FATAL("tmpfs: slow node exhausted creating '%s'",
                        name_.c_str());
        pm.frame(pfn).add_rmap(this, i, mem::RmapKind::kPageCache);
        cache_.push_back(pfn);
    }
}

TmpFs::File::~File()
{
    // tmpfs semantics: dropping the cache reference frees a frame only
    // when no process still maps it; otherwise the frame lives until
    // the last munmap (AddressSpace::release_vma frees it then).
    mem::PhysicalMemory &pm = fs_.kernel().phys();
    for (std::uint64_t i = 0; i < cache_.size(); ++i) {
        mem::PageFrame &frame = pm.frame(cache_[i]);
        frame.remove_rmap(this, i, mem::RmapKind::kPageCache);
        if (frame.rmaps.empty()) pm.free(cache_[i], 0);
    }
}

bool
TmpFs::File::pwrite(std::uint64_t offset, const void *data,
                    std::uint64_t len)
{
    if (offset + len > size_bytes()) return false;
    mem::PhysicalMemory &pm = fs_.kernel().phys();
    const std::byte *src = static_cast<const std::byte *>(data);
    while (len > 0) {
        const std::uint64_t page = offset / 4096;
        const std::uint64_t in_page = 4096 - (offset % 4096);
        const std::uint64_t chunk = len < in_page ? len : in_page;
        std::memcpy(pm.span(cache_[page], 4096) + (offset % 4096), src,
                    chunk);
        offset += chunk;
        src += chunk;
        len -= chunk;
    }
    return true;
}

bool
TmpFs::File::pread(std::uint64_t offset, void *out, std::uint64_t len)
{
    if (offset + len > size_bytes()) return false;
    mem::PhysicalMemory &pm = fs_.kernel().phys();
    std::byte *dst = static_cast<std::byte *>(out);
    while (len > 0) {
        const std::uint64_t page = offset / 4096;
        const std::uint64_t in_page = 4096 - (offset % 4096);
        const std::uint64_t chunk = len < in_page ? len : in_page;
        std::memcpy(dst, pm.span(cache_[page], 4096) + (offset % 4096),
                    chunk);
        offset += chunk;
        dst += chunk;
        len -= chunk;
    }
    return true;
}

void
TmpFs::File::relocate(std::uint64_t page_index, mem::Pfn new_pfn)
{
    MEMIF_ASSERT(page_index < cache_.size(), "relocate beyond EOF");
    cache_[page_index] = new_pfn;
}

mem::Pfn
TmpFs::File::cached_pfn(std::uint64_t page_index) const
{
    if (page_index >= cache_.size()) return mem::kInvalidPfn;
    return cache_[page_index];
}

TmpFs::File *
TmpFs::create(const std::string &name, std::uint64_t num_pages)
{
    if (files_.count(name)) return nullptr;
    auto file = std::make_unique<File>(*this, name, num_pages);
    File *raw = file.get();
    files_[name] = std::move(file);
    return raw;
}

TmpFs::File *
TmpFs::open(const std::string &name)
{
    auto it = files_.find(name);
    return it == files_.end() ? nullptr : it->second.get();
}

bool
TmpFs::unlink(const std::string &name)
{
    return files_.erase(name) > 0;
}

}  // namespace memif::os
