/**
 * @file
 * Quickstart: the paper's Figure 2, line for line.
 *
 * An application opens a memif instance, submits ten asynchronous
 * migration requests (moving slices of a working set into the fast
 * on-chip SRAM), does other work, retrieves completions, and finally
 * sleeps in poll() until everything has landed.
 *
 * Run: build/examples/quickstart
 */
#include <cstdio>
#include <vector>

#include "memif/device.h"
#include "memif/user_api.h"
#include "os/kernel.h"
#include "os/report.h"
#include "os/process.h"
#include "sim/types.h"

using namespace memif;

namespace {

sim::Task
application(os::Kernel &kernel, os::Process &proc, core::MemifUser &mif,
            vm::VAddr working_set)
{
    // --- Figure 2: submit ten move requests, non-blocking -------------
    std::vector<std::uint32_t> pending;
    for (int i = 0; i < 10; ++i) {
        const std::uint32_t r = mif.alloc_request();     // AllocRequest
        core::MovReq &req = mif.request(r);
        req.op = core::MovOp::kMigrate;                  // populate fields
        req.src_base = working_set +
                       static_cast<vm::VAddr>(i) * 16 * 4096;
        req.num_pages = 16;
        req.dst_node = kernel.fast_node();
        req.user_tag = static_cast<std::uint64_t>(i);
        co_await mif.submit(r);                          // SubmitRequest
        pending.push_back(r);
    }
    std::printf("[app] submitted 10 migration requests at t=%.1f us "
                "(syscalls so far: %llu)\n",
                sim::to_us(kernel.eq().now()),
                static_cast<unsigned long long>(mif.stats().kicks));

    // --- do computation while the DMA engine moves memory --------------
    co_await kernel.cpu().busy(sim::ExecContext::kUser, sim::Op::kOther,
                               sim::microseconds(200));

    // --- non-blocking retrieval ----------------------------------------
    std::uint32_t done = 0;
    for (;;) {
        const std::uint32_t r = mif.retrieve_completed();
        if (r == core::kNoRequest) break;
        const core::MovReq &req = mif.request(r);
        std::printf("[app] request #%llu completed at t=%.1f us (%s)\n",
                    static_cast<unsigned long long>(req.user_tag),
                    sim::to_us(req.complete_time),
                    req.succeeded() ? "ok" : "error");
        mif.free_request(r);
        ++done;
    }

    // --- no other work: sleep until the rest complete (poll) -----------
    while (done < 10) {
        co_await mif.poll();
        for (;;) {
            const std::uint32_t r = mif.retrieve_completed();
            if (r == core::kNoRequest) break;
            const core::MovReq &req = mif.request(r);
            std::printf("[app] request #%llu completed at t=%.1f us "
                        "(woke from poll)\n",
                        static_cast<unsigned long long>(req.user_tag),
                        sim::to_us(req.complete_time));
            mif.free_request(r);
            ++done;
        }
    }

    // Verify placement: the whole working set now lives in fast memory.
    vm::Vma *vma = proc.as().find_vma(working_set);
    std::uint64_t on_fast = 0;
    for (std::uint64_t p = 0; p < vma->num_pages(); ++p)
        if (kernel.phys().node_of(vma->pte(p).pfn) == kernel.fast_node())
            ++on_fast;
    std::printf("[app] %llu/%llu pages now resident in fast SRAM\n",
                static_cast<unsigned long long>(on_fast),
                static_cast<unsigned long long>(vma->num_pages()));
}

}  // namespace

int
main()
{
    os::Kernel kernel;                            // the simulated SoC
    os::Process &proc = kernel.create_process();
    core::MemifDevice device(kernel, proc);       // /dev/memif0
    core::MemifUser mif(device);                  // MemifOpen

    // A 640 KB working set in slow DDR.
    const vm::VAddr ws = proc.mmap(10 * 16 * 4096, vm::PageSize::k4K);

    kernel.spawn(application(kernel, proc, mif, ws));
    kernel.run();

    std::printf("\n[sim] virtual time elapsed: %.1f us\n",
                sim::to_us(kernel.eq().now()));
    std::printf("[sim] syscalls made by the app for 10 requests: %llu "
                "(one kick ioctl + polls)\n\n",
                static_cast<unsigned long long>(mif.stats().kicks +
                                                mif.stats().polls));
    os::print_system_report(stdout, kernel);
    return 0;
}
