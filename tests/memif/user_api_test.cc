/**
 * @file
 * Tests of the user library itself: request lifecycle, the submit
 * protocol's syscall economy, retrieval ordering, stats, and multiple
 * MemifUser handles (threads) on one instance.
 */
#include "memif/user_api.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "memif/device.h"
#include "os/kernel.h"
#include "os/process.h"

namespace memif::core {
namespace {

struct Fixture {
    os::Kernel kernel;
    os::Process &proc;
    MemifDevice dev;
    MemifUser user;

    explicit Fixture(MemifConfig cfg = {})
        : proc(kernel.create_process()), dev(kernel, proc, cfg), user(dev)
    {
    }

    ~Fixture()
    {
        // Every test must hand the driver back fully quiesced: no
        // in-flight records, leased descriptors, stuck slots, parked
        // frames unaccounted for, or stale xlate entries. Tests that
        // intentionally end mid-flight opt out via the flag.
        if (!check_quiesce_on_teardown) return;
        std::string why;
        EXPECT_TRUE(dev.check_quiesced(&why)) << "teardown: " << why;
    }

    /** Opt-out for tests that deliberately leave work in flight. */
    bool check_quiesce_on_teardown = true;
};

TEST(UserApi, AllocGivesDistinctOwnedRequests)
{
    Fixture f;
    std::set<std::uint32_t> seen;
    for (int i = 0; i < 32; ++i) {
        const std::uint32_t idx = f.user.alloc_request();
        ASSERT_NE(idx, kNoRequest);
        EXPECT_TRUE(seen.insert(idx).second);
        EXPECT_EQ(f.user.request(idx).load_status(), MovStatus::kOwned);
    }
    for (const std::uint32_t idx : seen) f.user.free_request(idx);
}

TEST(UserApi, AllocFreeCyclesBeyondCapacity)
{
    Fixture f(MemifConfig{.capacity = 8,
                          .gang_lookup = true,
                          .race_policy = RacePolicy::kDetect,
                          .poll_threshold_bytes = 512 * 1024});
    for (int round = 0; round < 100; ++round) {
        const std::uint32_t idx = f.user.alloc_request();
        ASSERT_NE(idx, kNoRequest);
        f.user.free_request(idx);
    }
}

TEST(UserApiDeath, DoubleFreePanics)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    Fixture f;
    const std::uint32_t idx = f.user.alloc_request();
    f.user.free_request(idx);
    EXPECT_DEATH(f.user.free_request(idx), "double free_request");
}

TEST(UserApi, RetrieveOnIdleInstanceReturnsNothing)
{
    Fixture f;
    EXPECT_EQ(f.user.retrieve_completed(), kNoRequest);
}

TEST(UserApi, SuccessfulCompletionsDrainBeforeFailures)
{
    Fixture f;
    const vm::VAddr good = f.proc.mmap(4 * 4096, vm::PageSize::k4K);

    // One failing request (unmapped source) and one succeeding one.
    const std::uint32_t bad = f.user.alloc_request();
    MovReq &breq = f.user.request(bad);
    breq.op = MovOp::kMigrate;
    breq.src_base = 0xDEAD0000;
    breq.num_pages = 1;
    breq.dst_node = f.kernel.fast_node();
    f.kernel.spawn(f.user.submit(bad));

    const std::uint32_t ok = f.user.alloc_request();
    MovReq &oreq = f.user.request(ok);
    oreq.op = MovOp::kMigrate;
    oreq.src_base = good;
    oreq.num_pages = 4;
    oreq.dst_node = f.kernel.fast_node();
    f.kernel.spawn(f.user.submit(ok));

    f.kernel.run();
    const std::uint32_t first = f.user.retrieve_completed();
    const std::uint32_t second = f.user.retrieve_completed();
    EXPECT_EQ(first, ok);
    EXPECT_EQ(second, bad);
    EXPECT_EQ(f.user.request(second).load_status(), MovStatus::kFailed);
}

TEST(UserApi, KicksStayRareUnderBurstyTraffic)
{
    Fixture f;
    const vm::VAddr src = f.proc.mmap(256 * 4096, vm::PageSize::k4K);
    const vm::VAddr dst =
        f.proc.mmap(16 * 4096, vm::PageSize::k4K, f.kernel.fast_node());

    auto burst = [&](int n) -> sim::Task {
        for (int i = 0; i < n; ++i) {
            const std::uint32_t idx = f.user.alloc_request();
            MovReq &req = f.user.request(idx);
            req.op = MovOp::kReplicate;
            req.src_base = src + static_cast<vm::VAddr>(i % 16) * 16 * 4096;
            req.dst_base = dst;
            req.num_pages = 16;
            co_await f.user.submit(idx);
        }
    };
    for (int b = 0; b < 5; ++b) {
        auto t = burst(10);
        f.kernel.run();
        while (f.user.retrieve_completed() != kNoRequest) {}
    }
    // 50 submissions; at most one kick per burst (idle period).
    EXPECT_EQ(f.user.stats().submits, 50u);
    EXPECT_LE(f.user.stats().kicks, 5u);
    EXPECT_GE(f.user.stats().kicks, 1u);
}

TEST(UserApi, TwoHandlesShareOneInstanceSafely)
{
    // Two MemifUser objects (two app threads) against one device: all
    // requests complete, the free list never double-allocates.
    Fixture f;
    MemifUser other(f.dev);
    const vm::VAddr src = f.proc.mmap(64 * 4096, vm::PageSize::k4K);
    const vm::VAddr dst =
        f.proc.mmap(64 * 4096, vm::PageSize::k4K, f.kernel.fast_node());

    auto worker = [&](MemifUser &u, unsigned id) -> sim::Task {
        for (int i = 0; i < 8; ++i) {
            const std::uint32_t idx = u.alloc_request();
            EXPECT_NE(idx, kNoRequest);
            MovReq &req = u.request(idx);
            req.op = MovOp::kReplicate;
            req.src_base = src + (id * 8 + static_cast<unsigned>(i) % 8) *
                                     4 * 4096ull;
            req.dst_base = dst + id * 32 * 4096ull;
            req.num_pages = 4;
            req.user_tag = id;
            co_await u.submit(idx);
            co_await sim::Delay{f.kernel.eq(), sim::microseconds(3)};
        }
    };
    auto a = worker(f.user, 0);
    auto b = worker(other, 1);
    f.kernel.run();

    unsigned completed = 0;
    for (;;) {
        std::uint32_t idx = f.user.retrieve_completed();
        if (idx == kNoRequest) idx = other.retrieve_completed();
        if (idx == kNoRequest) break;
        EXPECT_TRUE(f.user.request(idx).succeeded());
        f.user.free_request(idx);
        ++completed;
    }
    EXPECT_EQ(completed, 16u);
    EXPECT_TRUE(f.dev.idle());
}

TEST(UserApi, PollReturnsImmediatelyWhenCompletionPending)
{
    Fixture f;
    const vm::VAddr src = f.proc.mmap(4 * 4096, vm::PageSize::k4K);
    const vm::VAddr dst =
        f.proc.mmap(4 * 4096, vm::PageSize::k4K, f.kernel.fast_node());
    const std::uint32_t idx = f.user.alloc_request();
    MovReq &req = f.user.request(idx);
    req.op = MovOp::kReplicate;
    req.src_base = src;
    req.dst_base = dst;
    req.num_pages = 4;
    f.kernel.spawn(f.user.submit(idx));
    f.kernel.run();  // completes; event stays set

    bool woke = false;
    auto waiter = [&]() -> sim::Task {
        co_await f.user.poll();
        woke = true;
    };
    auto t = waiter();
    f.kernel.run();
    EXPECT_TRUE(woke);
    EXPECT_EQ(f.user.retrieve_completed(), idx);
}

}  // namespace
}  // namespace memif::core
