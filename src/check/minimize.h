/**
 * @file
 * Greedy workload minimization (ddmin-lite): given a failing
 * (workload, options) pair, repeatedly try dropping chunks of ops —
 * halving the chunk size as progress stalls — and keep every removal
 * that still reproduces a failure. The result is a locally minimal
 * workload: removing any single remaining op makes the failure vanish.
 *
 * Minimization never touches the seeds, so the shrunk repro still
 * replays from the same printed (workload_seed, schedule_seed) pair
 * plus the surviving op list.
 */
#pragma once

#include <cstdint>
#include <string>

#include "check/differential.h"
#include "check/workload.h"

namespace memif::check {

struct MinimizeOutcome {
    /** The smallest still-failing workload found. */
    Workload workload;
    /** Failure message of the minimized reproduction. */
    std::string failure;
    /** Differential runs spent shrinking. */
    std::uint32_t runs = 0;
    /** Ops in the original / minimized workload. */
    std::size_t original_ops = 0;
    std::size_t minimized_ops = 0;
};

/**
 * Shrink @p w, which must fail under @p opt, to a locally minimal
 * failing workload. Spends at most @p max_runs differential runs.
 * If @p w does not actually fail, returns it unchanged with runs == 1.
 */
MinimizeOutcome minimize_workload(const Workload &w,
                                  const RunOptions &opt,
                                  std::uint32_t max_runs = 200);

}  // namespace memif::check
