#include "os/page_migration.h"

#include "os/kernel.h"
#include "sim/cost_model.h"
#include "sim/cpu.h"
#include "sim/log.h"
#include "vm/addr_space.h"
#include "vm/pte.h"

namespace memif::os {

using sim::ExecContext;
using sim::Op;

sim::Task
migrate_pages_sync(Process &proc, vm::VAddr start, std::uint64_t npages,
                   mem::NodeId dst_node, MigrationResult *out)
{
    Kernel &k = proc.kernel();
    const sim::CostModel &cm = k.costs();
    sim::Cpu &cpu = k.cpu();
    vm::AddressSpace &as = proc.as();
    mem::PhysicalMemory &pm = k.phys();

    MigrationResult result;
    result.pages_requested = npages;

    // Syscall entry + fixed setup (argument copy, vma checks).
    co_await k.syscall_crossing();
    co_await cpu.busy(ExecContext::kSyscall, Op::kPrep, cm.syscall_setup);

    vm::VAddr va = start;
    for (std::uint64_t n = 0; n < npages; ++n) {
        vm::Vma *vma = as.find_vma(va);
        if (!vma) {
            ++result.pages_failed;
            continue;
        }
        const std::uint64_t pb = vm::page_bytes(vma->page_size());
        const unsigned order = vm::page_order(vma->page_size());
        const std::uint64_t idx = vma->page_index(va);
        vm::PteSlot &slot = vma->pte_slot(idx);
        va += pb;

        // ---- 1. Prep: full per-page walk + page-descriptor lookup ----
        co_await cpu.busy(ExecContext::kSyscall, Op::kPrep,
                          cm.page_walk_full + cm.rmap_per_page);
        const vm::Pte old_pte = vm::Pte::unpack(
            slot.load(std::memory_order_acquire));
        if (!old_pte.present ||
            pm.node_of(old_pte.pfn) == dst_node) {
            ++result.pages_failed;
            continue;
        }
        if (pm.frame(old_pte.pfn).mapcount() > 1) {
            // Shared anonymous pages: the baseline skips them (walking
            // every mapper's tables is exactly the rmap machinery the
            // memif driver implements; see MemifDevice).
            ++result.pages_failed;
            continue;
        }

        // ---- 2. Remap: allocate + migration PTE + TLB + caches -------
        co_await cpu.busy(ExecContext::kSyscall, Op::kRemap,
                          cm.page_alloc_time(order));
        const mem::Pfn new_pfn = pm.allocate(dst_node, order);
        if (new_pfn == mem::kInvalidPfn) {
            ++result.pages_failed;
            continue;
        }
        vm::Pte migration_pte = old_pte;
        migration_pte.migration = true;
        slot.store(migration_pte.pack(), std::memory_order_release);
        as.flush_tlb_page(vma->page_vaddr(idx), vma->page_size());
        co_await cpu.busy(ExecContext::kSyscall, Op::kRemap,
                          cm.pte_update + cm.tlb_flush_page +
                              cm.cache_flush_time(pb));

        // ---- 3. Copy: the CPU moves the bytes -------------------------
        pm.copy(new_pfn, old_pte.pfn, pb);
        co_await cpu.busy(ExecContext::kSyscall, Op::kCopy,
                          cm.cpu_copy_time(pb));

        // ---- 4. Release: final PTE + TLB + free + wake accessors ------
        vm::Pte final_pte = old_pte;
        final_pte.pfn = new_pfn;
        final_pte.migration = false;
        slot.store(final_pte.pack(), std::memory_order_release);
        as.flush_tlb_page(vma->page_vaddr(idx), vma->page_size());

        pm.frame(new_pfn).add_rmap(&as, vma->page_vaddr(idx));
        pm.frame(old_pte.pfn).remove_rmap(&as, vma->page_vaddr(idx));
        pm.free(old_pte.pfn, order);

        co_await cpu.busy(ExecContext::kSyscall, Op::kRelease,
                          cm.pte_update + cm.tlb_flush_page + cm.page_free);
        k.migration_waitq().notify_all();

        ++result.pages_moved;
        result.bytes_moved += pb;
    }

    result.completed_at = k.eq().now();
    if (out) *out = result;
}

sim::Task
mbind_lazy(Process &proc, vm::VAddr start, std::uint64_t npages,
           mem::NodeId dst_node, MigrationResult *out)
{
    Kernel &k = proc.kernel();
    const sim::CostModel &cm = k.costs();
    sim::Cpu &cpu = k.cpu();
    vm::AddressSpace &as = proc.as();

    MigrationResult result;
    result.pages_requested = npages;

    co_await k.syscall_crossing();
    co_await cpu.busy(ExecContext::kSyscall, Op::kPrep, cm.syscall_setup);

    vm::VAddr va = start;
    for (std::uint64_t n = 0; n < npages; ++n) {
        vm::Vma *vma = as.find_vma(va);
        if (!vma || dst_node >= k.phys().node_count()) {
            ++result.pages_failed;
            continue;
        }
        const std::uint64_t idx = vma->page_index(va);
        va += vm::page_bytes(vma->page_size());
        vm::PteSlot &slot = vma->pte_slot(idx);
        const vm::Pte pte =
            vm::Pte::unpack(slot.load(std::memory_order_acquire));
        if (!pte.present || pte.migration || pte.lazy ||
            k.phys().node_of(pte.pfn) == dst_node) {
            ++result.pages_failed;
            continue;
        }
        vm::Pte marked = pte;
        marked.lazy = true;
        marked.lazy_target = static_cast<std::uint8_t>(dst_node);
        slot.store(marked.pack(), std::memory_order_release);
        as.flush_tlb_page(vma->page_vaddr(idx), vma->page_size());
        // Marking is cheap: one PTE write + TLB flush per page.
        co_await cpu.busy(ExecContext::kSyscall, Op::kRemap,
                          cm.pte_update + cm.tlb_flush_page);
        ++result.pages_moved;  // "armed" rather than moved
    }
    result.completed_at = k.eq().now();
    if (out) *out = result;
}

sim::Task
migrate_lazy_fault(Process &proc, vm::VAddr va)
{
    Kernel &k = proc.kernel();
    const sim::CostModel &cm = k.costs();
    sim::Cpu &cpu = k.cpu();
    vm::AddressSpace &as = proc.as();
    mem::PhysicalMemory &pm = k.phys();

    vm::Vma *vma = as.find_vma(va);
    MEMIF_ASSERT(vma != nullptr, "lazy fault on unmapped address");
    const std::uint64_t pb = vm::page_bytes(vma->page_size());
    const unsigned order = vm::page_order(vma->page_size());
    const std::uint64_t idx = vma->page_index(va);
    vm::PteSlot &slot = vma->pte_slot(idx);
    const vm::Pte pte =
        vm::Pte::unpack(slot.load(std::memory_order_acquire));
    if (!pte.lazy) co_return;  // raced with another fault: done already

    // Fault entry (trap) + the full baseline per-page migration.
    co_await cpu.busy(ExecContext::kSyscall, Op::kSyscall,
                      cm.syscall_crossing);
    co_await cpu.busy(ExecContext::kSyscall, Op::kPrep,
                      cm.page_walk_full + cm.rmap_per_page);
    co_await cpu.busy(ExecContext::kSyscall, Op::kRemap,
                      cm.page_alloc_time(order));
    const mem::Pfn new_pfn =
        pm.allocate(pte.lazy_target, order);
    if (new_pfn == mem::kInvalidPfn) {
        // Exhausted destination: drop the marker, keep the page home.
        vm::Pte clear = pte;
        clear.lazy = false;
        slot.store(clear.pack(), std::memory_order_release);
        co_return;
    }
    co_await cpu.busy(ExecContext::kSyscall, Op::kRemap,
                      cm.pte_update + cm.tlb_flush_page +
                          cm.cache_flush_time(pb));
    pm.copy(new_pfn, pte.pfn, pb);
    co_await cpu.busy(ExecContext::kSyscall, Op::kCopy,
                      cm.cpu_copy_time(pb));
    vm::Pte final_pte = pte;
    final_pte.pfn = new_pfn;
    final_pte.lazy = false;
    slot.store(final_pte.pack(), std::memory_order_release);
    as.flush_tlb_page(vma->page_vaddr(idx), vma->page_size());
    pm.frame(new_pfn).add_rmap(&as, vma->page_vaddr(idx));
    pm.frame(pte.pfn).remove_rmap(&as, vma->page_vaddr(idx));
    pm.free(pte.pfn, order);
    co_await cpu.busy(ExecContext::kSyscall, Op::kRelease,
                      cm.pte_update + cm.tlb_flush_page + cm.page_free);
}

}  // namespace memif::os
