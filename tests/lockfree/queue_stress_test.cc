/**
 * @file
 * Real-thread stress tests for the lock-free structures: these exercise
 * genuine hardware concurrency (unlike the deterministic simulator) and
 * check the integrity invariant of paper §4.2 — the shared structures
 * stay consistent under *any* access pattern.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "lockfree/cell.h"
#include "lockfree/link.h"
#include "lockfree/queue.h"

namespace memif::lockfree {
namespace {

struct Region {
    std::uint32_t capacity;
    StackHeader stack_header;
    std::vector<Cell> cells;
    QueueHeader q_header;

    explicit Region(std::uint32_t ncells) : capacity(ncells), cells(ncells)
    {
        CellPool::initialize(&stack_header, cells.data(), capacity);
    }

    CellPool pool() { return CellPool(&stack_header, cells.data(), capacity); }
};

unsigned
stress_threads()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw >= 4 ? 4 : 2;
}

TEST(QueueStress, MpmcNoLossNoDuplication)
{
    constexpr std::uint32_t kPerProducer = 20000;
    const unsigned nprod = stress_threads();
    const unsigned ncons = stress_threads();
    const std::uint32_t total = kPerProducer * nprod;

    Region r(total + 8);
    CellPool p = r.pool();
    RedBlueQueue::initialize(&r.q_header, p, Color::kRed);

    std::vector<std::atomic<std::uint32_t>> seen(total);
    for (auto &s : seen) s.store(0);
    std::atomic<std::uint32_t> consumed{0};
    std::atomic<bool> producers_done{false};

    std::vector<std::thread> threads;
    for (unsigned t = 0; t < nprod; ++t) {
        threads.emplace_back([&, t] {
            RedBlueQueue q(&r.q_header, r.pool());
            for (std::uint32_t i = 0; i < kPerProducer; ++i)
                q.enqueue(t * kPerProducer + i);
        });
    }
    for (unsigned t = 0; t < ncons; ++t) {
        threads.emplace_back([&] {
            RedBlueQueue q(&r.q_header, r.pool());
            for (;;) {
                const DequeueResult d = q.dequeue();
                if (d.ok) {
                    ASSERT_LT(d.value, total);
                    seen[d.value].fetch_add(1);
                    consumed.fetch_add(1);
                } else if (producers_done.load() &&
                           consumed.load() >= total) {
                    break;
                }
            }
        });
    }
    for (unsigned t = 0; t < nprod; ++t) threads[t].join();
    producers_done.store(true);
    for (unsigned t = nprod; t < threads.size(); ++t) threads[t].join();

    EXPECT_EQ(consumed.load(), total);
    for (std::uint32_t v = 0; v < total; ++v)
        ASSERT_EQ(seen[v].load(), 1u) << "value " << v;
}

TEST(QueueStress, PerProducerOrderIsPreserved)
{
    // FIFO per producer: a consumer must see each producer's values in
    // increasing order even under MPMC interleaving.
    constexpr std::uint32_t kPerProducer = 30000;
    const unsigned nprod = stress_threads();
    Region r(kPerProducer * nprod + 8);
    CellPool p = r.pool();
    RedBlueQueue::initialize(&r.q_header, p, Color::kRed);

    std::vector<std::thread> threads;
    for (unsigned t = 0; t < nprod; ++t) {
        threads.emplace_back([&, t] {
            RedBlueQueue q(&r.q_header, r.pool());
            for (std::uint32_t i = 0; i < kPerProducer; ++i)
                q.enqueue((t << 24) | i);
        });
    }
    for (auto &th : threads) th.join();

    RedBlueQueue q(&r.q_header, r.pool());
    std::vector<std::uint32_t> last(nprod, 0);
    std::vector<bool> any(nprod, false);
    for (;;) {
        const DequeueResult d = q.dequeue();
        if (!d.ok) break;
        const unsigned prod = d.value >> 24;
        const std::uint32_t seq = d.value & 0xFF'FFFF;
        ASSERT_LT(prod, nprod);
        if (any[prod]) { ASSERT_GT(seq, last[prod]); }
        last[prod] = seq;
        any[prod] = true;
    }
    for (unsigned t = 0; t < nprod; ++t) {
        EXPECT_TRUE(any[t]);
        EXPECT_EQ(last[t], kPerProducer - 1);
    }
}

TEST(QueueStress, CellPoolConcurrentPushPop)
{
    constexpr std::uint32_t kCells = 256;
    constexpr int kIters = 50000;
    Region r(kCells);
    const unsigned nthreads = stress_threads();

    std::vector<std::thread> threads;
    std::atomic<bool> failed{false};
    for (unsigned t = 0; t < nthreads; ++t) {
        threads.emplace_back([&] {
            CellPool p = r.pool();
            std::vector<std::uint32_t> held;
            for (int i = 0; i < kIters && !failed.load(); ++i) {
                if (held.size() < 8) {
                    const std::uint32_t idx = p.pop();
                    if (idx != kNil) {
                        if (idx >= kCells) {
                            failed.store(true);
                            break;
                        }
                        held.push_back(idx);
                    }
                } else {
                    p.push(held.back());
                    held.pop_back();
                }
            }
            for (std::uint32_t idx : held) p.push(idx);
        });
    }
    for (auto &th : threads) th.join();
    EXPECT_FALSE(failed.load());

    // Every cell must be back and poppable exactly once.
    CellPool p = r.pool();
    std::vector<bool> seen(kCells, false);
    for (std::uint32_t i = 0; i < kCells; ++i) {
        const std::uint32_t idx = p.pop();
        ASSERT_NE(idx, kNil);
        ASSERT_LT(idx, kCells);
        ASSERT_FALSE(seen[idx]) << "cell " << idx << " duplicated";
        seen[idx] = true;
    }
    EXPECT_EQ(p.pop(), kNil);
}

TEST(QueueStress, MixedEnqueueDequeueChurnRecyclesCells)
{
    // Queue capacity far below total traffic: forces heavy recycling and
    // tag wraparound pressure on the ABA counters.
    constexpr std::uint32_t kCells = 64;
    constexpr int kIters = 60000;
    Region r(kCells);
    CellPool p = r.pool();
    RedBlueQueue::initialize(&r.q_header, p, Color::kRed);

    const unsigned nthreads = stress_threads();
    std::atomic<std::uint64_t> enq_total{0}, deq_total{0};
    std::vector<std::thread> threads;
    for (unsigned t = 0; t < nthreads; ++t) {
        threads.emplace_back([&] {
            RedBlueQueue q(&r.q_header, r.pool());
            std::uint64_t enq = 0, deq = 0;
            for (int i = 0; i < kIters; ++i) {
                // Enqueue one, then dequeue until one succeeds: the queue
                // population stays <= nthreads, well under kCells, while
                // every cell recycles thousands of times.
                q.enqueue(static_cast<std::uint32_t>(i));
                ++enq;
                while (!q.dequeue().ok) {}
                ++deq;
            }
            enq_total.fetch_add(enq);
            deq_total.fetch_add(deq);
        });
    }
    for (auto &th : threads) th.join();

    RedBlueQueue q(&r.q_header, r.pool());
    std::uint64_t drained = 0;
    while (q.dequeue().ok) ++drained;
    EXPECT_EQ(enq_total.load(), deq_total.load() + drained);
    EXPECT_EQ(drained, 0u);
}

}  // namespace
}  // namespace memif::lockfree
