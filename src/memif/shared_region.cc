#include "memif/shared_region.h"

#include <new>

#include "sim/log.h"

namespace memif::core {

namespace {
/** Cells: one per queued request + five queue dummies + slack for
 *  operations caught between a pool pop and the enqueue CAS. */
constexpr std::uint32_t kQueueCount = 5;
constexpr std::uint32_t kCellSlack = 16;
}  // namespace

SharedRegion::SharedRegion(std::uint32_t capacity, std::uint32_t num_rings)
{
    MEMIF_ASSERT(capacity > 0 && capacity < lockfree::kNil,
                 "bad region capacity");
    if (num_rings > kMaxSubmitRings) num_rings = kMaxSubmitRings;
    // Each formatted ring needs its own queue dummy cell.
    const std::uint32_t ncells =
        capacity + kQueueCount + num_rings + kCellSlack;

    const std::size_t header_bytes =
        (sizeof(RegionHeader) + alignof(lockfree::Cell) - 1) &
        ~(alignof(lockfree::Cell) - 1);
    const std::size_t cells_bytes = sizeof(lockfree::Cell) * ncells;
    const std::size_t cells_end =
        (header_bytes + cells_bytes + alignof(MovReq) - 1) &
        ~(alignof(MovReq) - 1);
    bytes_ = cells_end + sizeof(MovReq) * capacity;

    storage_ = std::make_unique<std::byte[]>(bytes_);
    header_ = new (storage_.get()) RegionHeader{};
    header_->capacity = capacity;
    header_->ncells = ncells;
    header_->num_rings = num_rings;
    cells_ = reinterpret_cast<lockfree::Cell *>(storage_.get() +
                                                header_bytes);
    for (std::uint32_t i = 0; i < ncells; ++i) new (&cells_[i]) lockfree::Cell{};
    requests_ = reinterpret_cast<MovReq *>(storage_.get() + cells_end);
    for (std::uint32_t i = 0; i < capacity; ++i) new (&requests_[i]) MovReq{};

    // Format the lock-free structures, then preload the free list with
    // every request slot (paper Fig. 3a).
    lockfree::CellPool::initialize(&header_->cell_pool, cells_, ncells);
    lockfree::CellPool p = pool();
    lockfree::RedBlueQueue::initialize(&header_->free_q, p,
                                       lockfree::Color::kRed);
    lockfree::RedBlueQueue::initialize(&header_->staging_q, p,
                                       lockfree::Color::kBlue);
    lockfree::RedBlueQueue::initialize(&header_->submission_q, p,
                                       lockfree::Color::kRed);
    lockfree::RedBlueQueue::initialize(&header_->completion_ok_q, p,
                                       lockfree::Color::kRed);
    lockfree::RedBlueQueue::initialize(&header_->completion_err_q, p,
                                       lockfree::Color::kRed);
    // Rings start blue like staging: a blue ring tells the depositor
    // the kernel thread is asleep and a kick is needed (§4.4 protocol,
    // applied per ring).
    for (std::uint32_t i = 0; i < num_rings; ++i)
        lockfree::RedBlueQueue::initialize(&header_->ring_q[i], p,
                                           lockfree::Color::kBlue);
    lockfree::RedBlueQueue freeq = free_queue();
    for (std::uint32_t i = 0; i < capacity; ++i) freeq.enqueue(i);
}

MovReq &
SharedRegion::request(std::uint32_t idx)
{
    MEMIF_ASSERT(valid_index(idx), "request index out of range");
    return requests_[idx];
}

const MovReq &
SharedRegion::request(std::uint32_t idx) const
{
    MEMIF_ASSERT(valid_index(idx), "request index out of range");
    return requests_[idx];
}

std::uint32_t
SharedRegion::index_of(const MovReq &req) const
{
    const MovReq *p = &req;
    MEMIF_ASSERT(p >= requests_ && p < requests_ + capacity(),
                 "foreign MovReq pointer");
    return static_cast<std::uint32_t>(p - requests_);
}

lockfree::CellPool
SharedRegion::pool()
{
    return lockfree::CellPool(&header_->cell_pool, cells_, header_->ncells);
}

lockfree::RedBlueQueue
SharedRegion::free_queue()
{
    return lockfree::RedBlueQueue(&header_->free_q, pool());
}

lockfree::RedBlueQueue
SharedRegion::staging_queue()
{
    return lockfree::RedBlueQueue(&header_->staging_q, pool());
}

lockfree::RedBlueQueue
SharedRegion::submission_queue()
{
    return lockfree::RedBlueQueue(&header_->submission_q, pool());
}

lockfree::RedBlueQueue
SharedRegion::completion_ok_queue()
{
    return lockfree::RedBlueQueue(&header_->completion_ok_q, pool());
}

lockfree::RedBlueQueue
SharedRegion::completion_err_queue()
{
    return lockfree::RedBlueQueue(&header_->completion_err_q, pool());
}

lockfree::RedBlueQueue
SharedRegion::ring_queue(std::uint32_t i)
{
    MEMIF_ASSERT(i < header_->num_rings, "ring index out of range");
    return lockfree::RedBlueQueue(&header_->ring_q[i], pool());
}

}  // namespace memif::core
