/**
 * @file
 * Unit tests for the discrete-event queue: ordering, determinism, clock
 * behaviour, and run_until semantics.
 */
#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <vector>

namespace memif::sim {
namespace {

TEST(EventQueue, StartsAtTimeZeroAndEmpty)
{
    EventQueue eq;
    EXPECT_EQ(eq.now(), 0u);
    EXPECT_TRUE(eq.empty());
    EXPECT_FALSE(eq.step());
}

TEST(EventQueue, RunsEventsInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule_at(30, [&] { order.push_back(3); });
    eq.schedule_at(10, [&] { order.push_back(1); });
    eq.schedule_at(20, [&] { order.push_back(2); });
    EXPECT_EQ(eq.run(), 3u);
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, SameTimestampIsFifo)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 8; ++i)
        eq.schedule_at(100, [&order, i] { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 8; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(EventQueue, ScheduleAfterUsesCurrentTime)
{
    EventQueue eq;
    SimTime fired_at = 0;
    eq.schedule_at(50, [&] {
        eq.schedule_after(25, [&] { fired_at = eq.now(); });
    });
    eq.run();
    EXPECT_EQ(fired_at, 75u);
}

TEST(EventQueue, PastScheduleClampsToNow)
{
    EventQueue eq;
    SimTime fired_at = 0;
    eq.schedule_at(100, [&] {
        eq.schedule_at(10, [&] { fired_at = eq.now(); });  // "in the past"
    });
    eq.run();
    EXPECT_EQ(fired_at, 100u);
}

TEST(EventQueue, EventsMayScheduleMoreEvents)
{
    EventQueue eq;
    int count = 0;
    std::function<void()> chain = [&] {
        if (++count < 5) eq.schedule_after(10, chain);
    };
    eq.schedule_at(0, chain);
    eq.run();
    EXPECT_EQ(count, 5);
    EXPECT_EQ(eq.now(), 40u);
}

TEST(EventQueue, RunUntilStopsAtDeadline)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule_at(10, [&] { ++fired; });
    eq.schedule_at(20, [&] { ++fired; });
    eq.schedule_at(30, [&] { ++fired; });
    EXPECT_EQ(eq.run_until(20), 2u);
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(eq.now(), 20u);
    EXPECT_EQ(eq.pending(), 1u);
}

TEST(EventQueue, RunUntilAdvancesClockWhenIdle)
{
    EventQueue eq;
    EXPECT_EQ(eq.run_until(500), 0u);
    EXPECT_EQ(eq.now(), 500u);
}

TEST(EventQueue, CountsExecutedEvents)
{
    EventQueue eq;
    for (int i = 0; i < 10; ++i) eq.schedule_at(i, [] {});
    eq.run();
    EXPECT_EQ(eq.events_executed(), 10u);
}

TEST(EventQueue, CancelledEventNeverRuns)
{
    EventQueue eq;
    int fired = 0;
    const EventQueue::EventId id = eq.schedule_at(10, [&] { ++fired; });
    EXPECT_TRUE(eq.cancel(id));
    eq.run();
    EXPECT_EQ(fired, 0);
    EXPECT_EQ(eq.events_executed(), 0u);
}

TEST(EventQueue, CancelledEventDoesNotAdvanceClock)
{
    // The watchdog relies on this: disarming must leave no virtual-time
    // footprint, or fault-free runs would end later than the seed.
    EventQueue eq;
    const EventQueue::EventId id = eq.schedule_at(1000, [] {});
    eq.schedule_at(10, [] {});
    EXPECT_TRUE(eq.cancel(id));
    eq.run();
    EXPECT_EQ(eq.now(), 10u);
}

TEST(EventQueue, CancelledEventLeavesQueueEmpty)
{
    EventQueue eq;
    const EventQueue::EventId id = eq.schedule_at(50, [] {});
    EXPECT_FALSE(eq.empty());
    EXPECT_EQ(eq.pending(), 1u);
    EXPECT_TRUE(eq.cancel(id));
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.pending(), 0u);
}

TEST(EventQueue, CancelReturnsFalseForUnknownOrExecuted)
{
    EventQueue eq;
    EXPECT_FALSE(eq.cancel(EventQueue::kInvalidEvent));
    const EventQueue::EventId id = eq.schedule_at(5, [] {});
    eq.run();
    EXPECT_FALSE(eq.cancel(id));       // already executed
    EXPECT_FALSE(eq.cancel(id + 42));  // never scheduled
}

TEST(EventQueue, CancelOneOfSeveralAtSameTime)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule_at(100, [&] { order.push_back(0); });
    const EventQueue::EventId id =
        eq.schedule_at(100, [&] { order.push_back(1); });
    eq.schedule_at(100, [&] { order.push_back(2); });
    EXPECT_TRUE(eq.cancel(id));
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{0, 2}));
}

TEST(EventQueue, CancelFromWithinAnEvent)
{
    EventQueue eq;
    int fired = 0;
    const EventQueue::EventId victim = eq.schedule_at(20, [&] { ++fired; });
    eq.schedule_at(10, [&] { EXPECT_TRUE(eq.cancel(victim)); });
    eq.run();
    EXPECT_EQ(fired, 0);
    EXPECT_EQ(eq.now(), 10u);
}

}  // namespace
}  // namespace memif::sim
