/**
 * @file
 * The central timing calibration for the simulated KeyStone II platform.
 *
 * Every constant is annotated with the paper passage it was derived from.
 * Where the paper gives only aggregates (e.g. "~15 us per 4 KB page, of
 * which 4 us is the copy"), the split across primitive operations was
 * chosen so the aggregates and all evaluation *shapes* (Figures 6-8,
 * Table 4) are reproduced; see EXPERIMENTS.md for the validation.
 *
 * All times are virtual nanoseconds; all bandwidths are bytes/second.
 */
#pragma once

#include <cstdint>

#include "sim/types.h"

namespace memif::sim {

/**
 * Calibrated cost constants for one simulated platform.
 *
 * The defaults model the TI KeyStone II of Table 2: 4x Cortex-A15 @1.2 GHz,
 * 6 MB on-chip SRAM (24.0 GB/s measured), 8 GB DDR3-1600 (6.2 GB/s
 * measured), and the EDMA3 DMA engine.
 */
struct CostModel {
    // ----- Memory system (paper Table 2) ------------------------------
    /** Measured fast-memory (SRAM) bandwidth: 24.0 GB/s. */
    double fast_mem_bw = 24.0e9;
    /** Measured slow-memory (DDR3) bandwidth: 6.2 GB/s. */
    double slow_mem_bw = 6.2e9;

    // ----- Far/remote tier (optional third node). Calibrated per
    //       Akram et al., "Emulating Hybrid Memory on NUMA Hardware":
    //       a remote RDMA-class tier is modelled as a bandwidth-capped
    //       node whose accesses carry ~100x DRAM latency. The node only
    //       exists when KernelConfig::far_bytes is nonzero, so machines
    //       without it are byte-identical to the two-node build.
    /** Sustained far-tier (remote/RDMA-class) bandwidth. */
    double far_mem_bw = 1.2e9;
    /** Per-descriptor access latency of the far tier. DDR3-1600 random
     *  access is ~80 ns; the emulated remote tier pays ~100x that on
     *  every descriptor touching it. */
    Duration far_mem_latency = nanoseconds(8000);

    // ----- CPU byte copy (paper 2.2: ~4 us of the ~15 us per 4 KB page
    //       is copying bytes; Fig. 8 shows migspeed at ~2 GB/s for 2 MB
    //       pages, so the copy has a fixed per-call component plus a
    //       streaming component).
    /** Fixed per-copy-call overhead (cache warmup, loop setup). */
    Duration cpu_copy_fixed = nanoseconds(2050);
    /** Streaming CPU copy bandwidth (read+write through one A15 core). */
    double cpu_copy_bw = 2.1e9;

    // ----- Virtual memory management (paper 2.2 & 5.2: per-page kernel
    //       work is ~11 us beyond the copy; "changing PTE and TLB has
    //       significant direct cost, e.g., up to a couple of us").
    /** Full top-down page-table walk to one PTE. */
    Duration page_walk_full = nanoseconds(800);
    /** Stepping to an adjacent PTE during gang lookup (paper 5.1). */
    Duration page_walk_adjacent = nanoseconds(50);
    /** Writing one PTE (no TLB work). */
    Duration pte_update = nanoseconds(400);
    /** Atomic compare-and-swap on one PTE (paper 5.2 Release). */
    Duration pte_cas = nanoseconds(120);
    /** Flushing one page's TLB entry, incl. broadcast cost (paper 5.2). */
    Duration tlb_flush_page = nanoseconds(1500);
    /** Base cost of one ranged TLB invalidation: the broadcast and
     *  barrier paid once for a whole run of pages (batched shootdown). */
    Duration tlb_flush_range_base = nanoseconds(2000);
    /** Per-covered-page increment of a ranged invalidation. */
    Duration tlb_flush_range_per_page = nanoseconds(100);
    /** Per-page reverse-map / page-descriptor bookkeeping. */
    Duration rmap_per_page = nanoseconds(1000);
    /** Cache maintenance per 4 KB (baseline Linux flushes; EDMA3 on
     *  KeyStone II is coherent so memif skips this, paper 2.3). */
    Duration cache_flush_per_4k = nanoseconds(1000);
    /** Upper bound on one flush: cleaning the whole L2 by set/way is
     *  cheaper than by-VA maintenance over a large range. */
    Duration cache_flush_cap = microseconds(64);

    // ----- Physical page allocator -----------------------------------
    /** Allocating one 4 KB page from the buddy allocator. */
    Duration page_alloc_base = nanoseconds(1500);
    /** Extra allocation cost per order (finding/splitting larger blocks). */
    Duration page_alloc_per_order = nanoseconds(350);
    /** Per-frame cost of high-order allocations (compaction pressure:
     *  assembling 512 contiguous frames is far costlier than 1). */
    Duration page_alloc_per_frame = nanoseconds(25);
    /** Freeing one page (any order). */
    Duration page_free = nanoseconds(1000);
    /**
     * @name Bulk allocation & the per-node frame magazine.
     * One bulk buddy call amortizes the allocator entry/locking over
     * many blocks (base + per-block), and the driver-side magazine
     * (Linux pcp-list analogue) hands frames out/back at list-op cost
     * instead of a full allocator round trip per frame.
     */
    ///@{
    /** Entry/locking cost of one allocate_bulk call (paid per refill). */
    Duration bulk_alloc_base = nanoseconds(1800);
    /** Per-block increment of a bulk allocation (list splice, split). */
    Duration bulk_alloc_per_block = nanoseconds(60);
    /** Popping or pushing one frame on a per-node magazine. */
    Duration magazine_op = nanoseconds(150);
    ///@}

    // ----- User/kernel interface (paper 2.3: crossings "significantly
    //       interfere"; FlexSC-style motivation).
    /** One syscall enter+exit round trip. */
    Duration syscall_crossing = nanoseconds(600);
    /** Fixed in-kernel setup per migration syscall (arg copy, vma checks). */
    Duration syscall_setup = nanoseconds(2000);
    /** One lock-free queue operation (enqueue/dequeue/set_color). */
    Duration queue_op = nanoseconds(50);
    /** Validating one mov_req (bounds, ownership; paper 4.2 safety). */
    Duration request_validate = nanoseconds(1000);
    /** Per-request driver bookkeeping (in-flight tracking, SG set-up). */
    Duration request_admin = nanoseconds(2000);
    /** Probing the gang translation cache (hit or miss; one hashed
     *  lookup against the per-VMA generation). */
    Duration xlate_probe = nanoseconds(120);
    /**
     * @name Shared-queue submit contention.
     * Two CPUs depositing into the SAME lock-free queue within the
     * window pay CAS retries; per-CPU submission rings avoid this by
     * construction. Only distinct submit CPUs ever contend, so
     * single-threaded reproduction timelines are unaffected.
     */
    ///@{
    Duration queue_contention_retry = nanoseconds(200);
    Duration queue_contention_window = nanoseconds(400);
    ///@}

    // ----- DMA engine (paper 5.3: "4-5 us to configure one descriptor";
    //       reuse rewrites only src/dst, "reducing the second overhead
    //       by 4x").
    /** Full 12-field write of one EDMA3 PaRAM descriptor (uncached I/O). */
    Duration dma_desc_write_full = nanoseconds(4500);
    /** Rewriting only src+dst of a cached descriptor (4x cheaper). */
    Duration dma_desc_write_reuse = nanoseconds(1100);
    /** Rewriting a single link field (chain fix-up during reuse). */
    Duration dma_desc_write_link = nanoseconds(550);
    /** Computing one descriptor's 12 parameters. */
    Duration dma_desc_param_calc = nanoseconds(500);
    /** Parameter calc when cached per-page-size (paper 5.3 first opt.). */
    Duration dma_desc_param_cached = nanoseconds(100);
    /** Kicking the engine (trigger register write) per transfer. */
    Duration dma_start = nanoseconds(1500);
    /** Engine-internal startup latency before bytes flow. */
    Duration dma_latency = nanoseconds(800);
    /** Per-descriptor (per-page) engine processing overhead. */
    Duration dma_per_desc = nanoseconds(150);

    // ----- Interrupts & scheduling ------------------------------------
    /** IRQ entry + handler prologue/epilogue. */
    Duration irq_overhead = nanoseconds(3500);
    /**
     * @name Completion-interrupt moderation (NIC/io_uring style).
     * A moderated transfer's completion interrupt is held until either
     * @ref dma_moderation_batch chains have finished on the same
     * transfer controller or @ref dma_moderation_holdoff has elapsed
     * since the first held completion — one IRQ then retires the whole
     * batch. The holdoff must stay below the watchdog slack so a held
     * IRQ can never be mistaken for a lost one.
     */
    ///@{
    Duration dma_moderation_holdoff = microseconds(10);
    std::uint32_t dma_moderation_batch = 8;
    ///@}
    /** Waking a kernel thread and getting it on a core. */
    Duration kthread_wakeup = nanoseconds(2500);
    /** Kernel thread short-sleep granularity in polled mode (paper 5.4). */
    Duration kthread_poll_interval = nanoseconds(2000);
    /** poll() syscall: enqueue on wait queue + wakeup + return. */
    Duration poll_syscall = nanoseconds(3000);

    // ----- Derived helpers --------------------------------------------
    /** Time for the CPU to copy @p bytes (one core, synchronous). */
    Duration
    cpu_copy_time(std::uint64_t bytes) const
    {
        return cpu_copy_fixed +
               static_cast<Duration>(static_cast<double>(bytes) / cpu_copy_bw *
                                     1e9);
    }

    /** Buddy allocation cost for a 2^order-page block. */
    Duration
    page_alloc_time(unsigned order) const
    {
        return page_alloc_base + order * page_alloc_per_order +
               (std::uint64_t{1} << order) * page_alloc_per_frame;
    }

    /** One allocate_bulk call handing back @p blocks 2^order blocks. */
    Duration
    bulk_alloc_time(unsigned order, std::uint64_t blocks) const
    {
        return bulk_alloc_base + order * page_alloc_per_order +
               blocks * (bulk_alloc_per_block +
                         (std::uint64_t{1} << order) * page_alloc_per_frame);
    }

    /**
     * DMA streaming time for @p bytes between nodes with the given
     * bandwidths; the slower side bounds the transfer.
     */
    Duration
    dma_stream_time(std::uint64_t bytes, double src_bw, double dst_bw) const
    {
        const double bw = src_bw < dst_bw ? src_bw : dst_bw;
        return static_cast<Duration>(static_cast<double>(bytes) / bw * 1e9);
    }

    /** One ranged TLB invalidation covering @p pages pages. */
    Duration
    tlb_flush_range_time(std::uint64_t pages) const
    {
        return tlb_flush_range_base + pages * tlb_flush_range_per_page;
    }

    /** Baseline cache maintenance for @p bytes (non-coherent DMA only). */
    Duration
    cache_flush_time(std::uint64_t bytes) const
    {
        const Duration by_va = cache_flush_per_4k * ((bytes + 4095) / 4096);
        return by_va < cache_flush_cap ? by_va : cache_flush_cap;
    }
};

}  // namespace memif::sim
